//! Fused, deterministic, parallel scans over the instance table.
//!
//! Analytics historically re-walked `Dataset.instances` once per figure
//! (~28 full-table scans for a full reproduction run). The scan engine
//! inverts that: any number of [`Accumulator`]s are registered on a
//! [`ScanPass`] and all of them are fed from **one** pass over the columns.
//!
//! ## Determinism contract
//!
//! The pipeline guarantees bit-identical results at any thread count
//! (see `DESIGN.md` §10). Floating-point accumulation is order-sensitive,
//! so the engine never lets the thread count influence evaluation order:
//!
//! 1. The table is split into **fixed-size** chunks of [`ScanPass::CHUNK`]
//!    rows — chunk boundaries depend only on the table length, never on
//!    the number of worker threads.
//! 2. Each chunk folds rows in ascending row order into a fresh
//!    accumulator cloned from the registered prototype
//!    ([`Accumulator::init`]).
//! 3. Chunk results are merged **sequentially, in chunk order**
//!    ([`Accumulator::merge`]), exactly as if the chunks had been
//!    processed one after another on a single thread.
//!
//! Threads only decide *who* computes a chunk, not *what* is computed or
//! *in which order* results combine.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use crate::dataset::{Dataset, InstanceRef};
use crate::id::InstanceId;

/// Counts completed full-table scans ([`ScanPass::run`] calls) in this
/// process; a debug/diagnostic aid for asserting scan-fusion budgets.
static FULL_SCANS: AtomicU64 = AtomicU64::new(0);

/// A streaming aggregate computed in one pass over the instance table.
///
/// Implementations are *prototypes*: the value registered on a
/// [`ScanPass`] carries configuration (cutoffs, lookup tables, …) and
/// [`Accumulator::init`] clones a blank working copy of it per chunk, so
/// parallel workers never share mutable state.
///
/// `merge` must be associative with `init()` as identity in the sense that
/// folding chunk results left-to-right equals a single sequential fold —
/// the engine relies on nothing stronger (float addition is fine).
pub trait Accumulator: Send + Sync {
    /// The shaped result extracted once the scan completes.
    type Output;

    /// A blank working copy carrying this prototype's configuration.
    fn init(&self) -> Self
    where
        Self: Sized;

    /// Folds one row into the running state. Rows arrive in ascending row
    /// order within a chunk.
    fn accept(&mut self, ds: &Dataset, id: InstanceId, row: InstanceRef<'_>);

    /// Absorbs the state of `other`, which covers the rows immediately
    /// after this accumulator's rows.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Shapes the merged state into the final output.
    fn finish(self, ds: &Dataset) -> Self::Output
    where
        Self: Sized;
}

/// Executes [`Accumulator`]s over a dataset's instance table in one fused,
/// chunked, deterministic parallel pass.
///
/// To fuse several heterogeneous accumulators into a single pass, register
/// them as a tuple (arities 2–8 implement [`Accumulator`] element-wise) or
/// as one struct delegating to per-field accumulators.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanPass;

impl ScanPass {
    /// Rows per chunk. Fixed (thread-count independent) so float merges
    /// happen in the same order no matter how wide the pool is.
    pub const CHUNK: usize = 8192;

    /// Runs `proto` over every instance of `ds` and returns its output.
    pub fn run<A: Accumulator>(ds: &Dataset, proto: &A) -> A::Output {
        let n = ds.instances.len();
        FULL_SCANS.fetch_add(1, Ordering::Relaxed);
        let chunks: Vec<(usize, usize)> = (0..n.div_ceil(Self::CHUNK))
            .map(|c| (c * Self::CHUNK, ((c + 1) * Self::CHUNK).min(n)))
            .collect();
        let parts: Vec<A> = chunks
            .par_iter()
            .map(|&(lo, hi)| {
                let mut acc = proto.init();
                for i in lo..hi {
                    acc.accept(ds, InstanceId::from_usize(i), ds.instances.row(i));
                }
                acc
            })
            .collect();
        let mut total = proto.init();
        for part in parts {
            total.merge(part);
        }
        total.finish(ds)
    }

    /// Number of full-table scans performed by this process so far.
    pub fn full_scan_count() -> u64 {
        FULL_SCANS.load(Ordering::Relaxed)
    }

    /// Resets the scan counter (test isolation).
    pub fn reset_scan_count() {
        FULL_SCANS.store(0, Ordering::Relaxed);
    }
}

macro_rules! impl_accumulator_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Accumulator),+> Accumulator for ($($name,)+) {
            type Output = ($($name::Output,)+);

            fn init(&self) -> Self {
                ($(self.$idx.init(),)+)
            }

            fn accept(&mut self, ds: &Dataset, id: InstanceId, row: InstanceRef<'_>) {
                $(self.$idx.accept(ds, id, row);)+
            }

            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }

            fn finish(self, ds: &Dataset) -> Self::Output {
                ($(self.$idx.finish(ds),)+)
            }
        }
    };
}

impl_accumulator_tuple!(A.0, B.1);
impl_accumulator_tuple!(A.0, B.1, C.2);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::dataset::{DatasetBuilder, TaskInstance};
    use crate::id::ItemId;
    use crate::task::{Batch, TaskType};
    use crate::time::{Duration, Timestamp};
    use crate::worker::{Source, SourceKind, Worker};
    use rayon::ThreadPoolBuilder;

    /// Order-sensitive float sum: catches any merge-order wobble.
    #[derive(Debug, Default)]
    struct TrustSum {
        sum: f64,
    }

    impl Accumulator for TrustSum {
        type Output = f64;

        fn init(&self) -> Self {
            TrustSum::default()
        }

        fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
            self.sum += f64::from(row.trust);
        }

        fn merge(&mut self, other: Self) {
            self.sum += other.sum;
        }

        fn finish(self, _ds: &Dataset) -> f64 {
            self.sum
        }
    }

    /// Config-carrying prototype: counts rows at or after a cutoff.
    #[derive(Debug, Clone)]
    struct CountSince {
        cutoff: Timestamp,
        n: u64,
    }

    impl Accumulator for CountSince {
        type Output = u64;

        fn init(&self) -> Self {
            CountSince { cutoff: self.cutoff, n: 0 }
        }

        fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
            if row.start >= self.cutoff {
                self.n += 1;
            }
        }

        fn merge(&mut self, other: Self) {
            self.n += other.n;
        }

        fn finish(self, _ds: &Dataset) -> u64 {
            self.n
        }
    }

    fn dataset(rows: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("s", SourceKind::Dedicated));
        let c = b.add_country("X");
        let w = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(TaskType::new("t"));
        let t0 = Timestamp::from_ymd(2015, 1, 1);
        let batch = b.add_batch(Batch::new(tt, t0).with_html("<p/>"));
        b.reserve_instances(rows);
        for i in 0..rows {
            let start = t0 + Duration::from_secs(i as i64);
            b.add_instance(TaskInstance {
                batch,
                item: ItemId::new(0),
                worker: w,
                start,
                end: start + Duration::from_secs(30),
                // Varied magnitudes make float addition order-sensitive.
                trust: if i % 3 == 0 { 1.0e-4 } else { 0.875 },
                answer: Answer::Choice((i % 2) as u16),
            });
        }
        b.finish().unwrap()
    }

    #[test]
    fn matches_sequential_fold() {
        let ds = dataset(20_001); // several chunks plus a remainder
        let expected: f64 = ds.instances.trust_col().iter().map(|&t| f64::from(t)).sum();
        // Same chunking as the engine, folded sequentially.
        let got = ScanPass::run(&ds, &TrustSum::default());
        let mut manual = 0.0;
        for lo in (0..ds.instances.len()).step_by(ScanPass::CHUNK) {
            let hi = (lo + ScanPass::CHUNK).min(ds.instances.len());
            let mut part = 0.0;
            for i in lo..hi {
                part += f64::from(ds.instances.trust_col()[i]);
            }
            manual += part;
        }
        assert_eq!(got.to_bits(), manual.to_bits());
        assert!((got - expected).abs() < 1e-6);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let ds = dataset(50_000);
        let mut baseline = None;
        for threads in [1, 2, 3, 4, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let sum = pool.install(|| ScanPass::run(&ds, &TrustSum::default()));
            let bits = sum.to_bits();
            match baseline {
                None => baseline = Some(bits),
                Some(b) => assert_eq!(bits, b, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn tuple_fusion_runs_one_pass() {
        let ds = dataset(10_000);
        let before = ScanPass::full_scan_count();
        let cutoff = Timestamp::from_ymd(2015, 1, 1) + Duration::from_secs(5_000);
        let proto = (TrustSum::default(), CountSince { cutoff, n: 0 });
        let (sum, since) = ScanPass::run(&ds, &proto);
        assert_eq!(ScanPass::full_scan_count() - before, 1, "fused = one pass");
        assert!(sum > 0.0);
        assert_eq!(since, 5_000);
    }

    #[test]
    fn empty_table_is_fine() {
        let ds = DatasetBuilder::new().finish().unwrap();
        assert_eq!(ScanPass::run(&ds, &TrustSum::default()), 0.0);
    }
}
