//! Fused, deterministic, parallel scans over the instance table.
//!
//! Analytics historically re-walked `Dataset.instances` once per figure
//! (~28 full-table scans for a full reproduction run). The scan engine
//! inverts that: any number of [`Accumulator`]s are registered on a
//! [`ScanPass`] and all of them are fed from **one** pass over the columns.
//!
//! ## Determinism contract
//!
//! The pipeline guarantees bit-identical results at any thread count
//! (see `DESIGN.md` §10). Floating-point accumulation is order-sensitive,
//! so the engine never lets the thread count influence evaluation order:
//!
//! 1. The table is split into **fixed-size** chunks of [`ScanPass::CHUNK`]
//!    rows — chunk boundaries depend only on the table length, never on
//!    the number of worker threads.
//! 2. Each chunk folds rows in ascending row order into a fresh
//!    accumulator cloned from the registered prototype
//!    ([`Accumulator::init`]).
//! 3. Chunk results are merged **sequentially, in chunk order**
//!    ([`Accumulator::merge`]), exactly as if the chunks had been
//!    processed one after another on a single thread.
//!
//! Threads only decide *who* computes a chunk, not *what* is computed or
//! *in which order* results combine.
//!
//! ## Shard reduction
//!
//! Sharding composes with the same discipline (DESIGN.md §15): a sharded
//! scan ([`ScanPass::run_plan`], [`ScanPass::run_sharded`],
//! [`ScanPass::run_stream`]) folds each shard's chunks exactly as above
//! and merges **chunk-level** partials into one running total in global
//! chunk order. Because shard boundaries are always [`ScanPass::CHUNK`]
//! multiples (see [`crate::shard::ShardPlan`]), the chunk decomposition —
//! and therefore every float-merge pairing — is *identical* to the
//! monolithic scan: shard count is bit-invisible by construction, not by
//! accident. The merge unit is the fixed chunk; shards only batch the
//! schedule (and, for [`run_stream`](ScanPass::run_stream), bound how
//! many rows are resident at once).

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use crate::dataset::{Dataset, InstanceColumns, InstanceRef};
use crate::id::InstanceId;
use crate::shard::{ShardPlan, ShardSink, ShardedColumns};

/// Counts completed full-table scans ([`ScanPass::run`] calls) in this
/// process; a debug/diagnostic aid for asserting scan-fusion budgets.
static FULL_SCANS: AtomicU64 = AtomicU64::new(0);

/// A streaming aggregate computed in one pass over the instance table.
///
/// Implementations are *prototypes*: the value registered on a
/// [`ScanPass`] carries configuration (cutoffs, lookup tables, …) and
/// [`Accumulator::init`] clones a blank working copy of it per chunk, so
/// parallel workers never share mutable state.
///
/// `merge` must be associative with `init()` as identity in the sense that
/// folding chunk results left-to-right equals a single sequential fold —
/// the engine relies on nothing stronger (float addition is fine).
pub trait Accumulator: Send + Sync {
    /// The shaped result extracted once the scan completes.
    type Output;

    /// A blank working copy carrying this prototype's configuration.
    fn init(&self) -> Self
    where
        Self: Sized;

    /// Folds one row into the running state. Rows arrive in ascending row
    /// order within a chunk.
    fn accept(&mut self, ds: &Dataset, id: InstanceId, row: InstanceRef<'_>);

    /// Folds local rows `range` of `cols` into the running state; `base`
    /// offsets local row indices into global instance ids. The engine
    /// calls this once per chunk, so `range` never exceeds
    /// [`ScanPass::CHUNK`] rows.
    ///
    /// The default implementation loops [`accept`](Self::accept) in
    /// ascending row order. Accumulators on the hot path may override it
    /// with columnar sub-loops over the chunk's column slices
    /// (DESIGN.md §18) — an override must be observably identical to the
    /// default, state and float bits included: same per-row values, and
    /// ascending row order preserved *within* every independently
    /// accumulated family (disjoint families may interleave differently;
    /// their accumulation sequences don't share state).
    fn accept_chunk(
        &mut self,
        ds: &Dataset,
        base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        for i in range {
            self.accept(ds, InstanceId::from_usize(base + i), cols.row(i));
        }
    }

    /// Absorbs the state of `other`, which covers the rows immediately
    /// after this accumulator's rows.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Shapes the merged state into the final output.
    fn finish(self, ds: &Dataset) -> Self::Output
    where
        Self: Sized;
}

/// Executes [`Accumulator`]s over a dataset's instance table in one fused,
/// chunked, deterministic parallel pass.
///
/// To fuse several heterogeneous accumulators into a single pass, register
/// them as a tuple (arities 2–8 implement [`Accumulator`] element-wise) or
/// as one struct delegating to per-field accumulators.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanPass;

impl ScanPass {
    /// Rows per chunk. Fixed (thread-count independent) so float merges
    /// happen in the same order no matter how wide the pool is.
    pub const CHUNK: usize = 8192;

    /// Runs `proto` over every instance of `ds` and returns its output.
    pub fn run<A: Accumulator>(ds: &Dataset, proto: &A) -> A::Output {
        FULL_SCANS.fetch_add(1, Ordering::Relaxed);
        let mut total = proto.init();
        Self::fold_range(ds, &ds.instances, 0, 0..ds.instances.len(), proto, &mut total);
        total.finish(ds)
    }

    /// Runs `proto` over `ds.instances` shard by shard per `plan`, merging
    /// each shard's chunk partials into one running total in global chunk
    /// order. Bit-identical to [`run`](Self::run) at any shard count —
    /// the plan's chunk-aligned boundaries reproduce the monolithic chunk
    /// decomposition exactly.
    ///
    /// # Panics
    /// When `plan` does not cover exactly `ds.instances.len()` rows.
    pub fn run_plan<A: Accumulator>(ds: &Dataset, plan: &ShardPlan, proto: &A) -> A::Output {
        assert_eq!(plan.n_rows(), ds.instances.len(), "plan must cover the instance table");
        FULL_SCANS.fetch_add(1, Ordering::Relaxed);
        let mut total = proto.init();
        for range in plan.ranges() {
            Self::fold_range(ds, &ds.instances, 0, range, proto, &mut total);
        }
        total.finish(ds)
    }

    /// Runs `proto` over a physically sharded store. `ds` supplies the
    /// entity context ([`Accumulator::accept`] receives it for batch /
    /// worker lookups); the rows come from `sharded`, not from
    /// `ds.instances`. Bit-identical to running over the concatenated
    /// store.
    pub fn run_sharded<A: Accumulator>(
        ds: &Dataset,
        sharded: &ShardedColumns,
        proto: &A,
    ) -> A::Output {
        FULL_SCANS.fetch_add(1, Ordering::Relaxed);
        let mut total = proto.init();
        for (base, shard) in sharded.iter_shards() {
            Self::fold_range(ds, shard, base, 0..shard.len(), proto, &mut total);
        }
        total.finish(ds)
    }

    /// Runs `proto` over a stream of owned shards — `(global_base, rows)`
    /// in ascending base order, each base a [`CHUNK`](Self::CHUNK)
    /// multiple — dropping each shard after folding it, so peak memory is
    /// one shard plus accumulator state. This is the zero-copy snapshot
    /// load path: shards come straight off per-shard file sections and
    /// never assemble into a full table.
    ///
    /// The first `Err` from the stream aborts the scan and is returned.
    ///
    /// # Panics
    /// When a shard's base is not chunk-aligned or not strictly after the
    /// previous shard's rows (out-of-order merges would change float
    /// pairings).
    pub fn run_stream<A: Accumulator, E>(
        ds: &Dataset,
        proto: &A,
        shards: impl Iterator<Item = Result<(usize, InstanceColumns), E>>,
    ) -> Result<A::Output, E> {
        let mut fold = StreamFold::new(ds, proto);
        for item in shards {
            let (base, cols) = item?;
            fold.flush(base, &cols).expect("StreamFold never fails");
        }
        Ok(fold.finish())
    }

    /// Folds local rows `range` of `cols` (global ids offset by `base`)
    /// into `total`: chunk partials computed in parallel, merged
    /// sequentially in chunk order. Every public entry point reduces to
    /// this, so the merge order — hence every float bit — is shared by
    /// the monolithic, planned, sharded, and streamed scans.
    fn fold_range<A: Accumulator>(
        ds: &Dataset,
        cols: &InstanceColumns,
        base: usize,
        range: std::ops::Range<usize>,
        proto: &A,
        total: &mut A,
    ) {
        assert_eq!(
            (base + range.start) % Self::CHUNK,
            0,
            "shard boundaries must be CHUNK-aligned to keep merge order fixed"
        );
        let (lo, hi) = (range.start, range.end);
        let chunks: Vec<(usize, usize)> = (0..(hi - lo).div_ceil(Self::CHUNK))
            .map(|c| (lo + c * Self::CHUNK, (lo + (c + 1) * Self::CHUNK).min(hi)))
            .collect();
        let parts: Vec<A> = chunks
            .par_iter()
            .map(|&(clo, chi)| {
                let mut acc = proto.init();
                acc.accept_chunk(ds, base, cols, clo..chi);
                acc
            })
            .collect();
        for part in parts {
            total.merge(part);
        }
    }

    /// Number of full-table scans performed by this process so far.
    pub fn full_scan_count() -> u64 {
        FULL_SCANS.load(Ordering::Relaxed)
    }

    /// Resets the scan counter (test isolation).
    pub fn reset_scan_count() {
        FULL_SCANS.store(0, Ordering::Relaxed);
    }
}

/// A [`ShardSink`] that folds arriving shards into an [`Accumulator`] —
/// the push-style dual of [`ScanPass::run_stream`], for producers (the
/// simulator's shard-flushing build) that *deliver* shards rather than
/// being iterated.
///
/// Each flushed shard goes through the same `fold_range` (chunk partials
/// in parallel, merged sequentially in global chunk order) as every other
/// scan entry point, so the finished output is bit-identical to a
/// monolithic [`ScanPass::run`] over the concatenated rows. Constructing
/// a `StreamFold` counts as one full-table scan toward
/// [`ScanPass::full_scan_count`].
pub struct StreamFold<'a, A: Accumulator> {
    ds: &'a Dataset,
    proto: &'a A,
    total: A,
    next_base: usize,
}

impl<'a, A: Accumulator> StreamFold<'a, A> {
    /// A fold ready to accept shard 0. `ds` supplies entity context only;
    /// the rows come from the flushed shards.
    pub fn new(ds: &'a Dataset, proto: &'a A) -> StreamFold<'a, A> {
        FULL_SCANS.fetch_add(1, Ordering::Relaxed);
        StreamFold { ds, proto, total: proto.init(), next_base: 0 }
    }

    /// Rows folded so far (= the base the next shard must start at).
    pub fn rows(&self) -> usize {
        self.next_base
    }

    /// Shapes the merged state into the accumulator's final output.
    pub fn finish(self) -> A::Output {
        self.total.finish(self.ds)
    }
}

impl<A: Accumulator> ShardSink for StreamFold<'_, A> {
    type Error = std::convert::Infallible;

    /// # Panics
    /// When `base` is not chunk-aligned or not exactly [`rows`](Self::rows)
    /// (out-of-order merges would change float pairings).
    fn flush(&mut self, base: usize, shard: &InstanceColumns) -> Result<(), Self::Error> {
        assert_eq!(base, self.next_base, "shards must arrive contiguously in ascending order");
        ScanPass::fold_range(self.ds, shard, base, 0..shard.len(), self.proto, &mut self.total);
        self.next_base = base + shard.len();
        Ok(())
    }
}

macro_rules! impl_accumulator_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Accumulator),+> Accumulator for ($($name,)+) {
            type Output = ($($name::Output,)+);

            fn init(&self) -> Self {
                ($(self.$idx.init(),)+)
            }

            fn accept(&mut self, ds: &Dataset, id: InstanceId, row: InstanceRef<'_>) {
                $(self.$idx.accept(ds, id, row);)+
            }

            fn accept_chunk(
                &mut self,
                ds: &Dataset,
                base: usize,
                cols: &InstanceColumns,
                range: std::ops::Range<usize>,
            ) {
                // Forward per element (not via the default row loop), so a
                // fused member with a columnar kernel keeps it inside a
                // tuple. Element states are disjoint, and each element
                // still sees the chunk's rows in ascending order.
                $(self.$idx.accept_chunk(ds, base, cols, range.clone());)+
            }

            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }

            fn finish(self, ds: &Dataset) -> Self::Output {
                ($(self.$idx.finish(ds),)+)
            }
        }
    };
}

impl_accumulator_tuple!(A.0, B.1);
impl_accumulator_tuple!(A.0, B.1, C.2);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_accumulator_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::dataset::{DatasetBuilder, TaskInstance};
    use crate::id::ItemId;
    use crate::task::{Batch, TaskType};
    use crate::time::{Duration, Timestamp};
    use crate::worker::{Source, SourceKind, Worker};
    use rayon::ThreadPoolBuilder;

    /// Order-sensitive float sum: catches any merge-order wobble.
    #[derive(Debug, Default)]
    struct TrustSum {
        sum: f64,
    }

    impl Accumulator for TrustSum {
        type Output = f64;

        fn init(&self) -> Self {
            TrustSum::default()
        }

        fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
            self.sum += f64::from(row.trust);
        }

        fn merge(&mut self, other: Self) {
            self.sum += other.sum;
        }

        fn finish(self, _ds: &Dataset) -> f64 {
            self.sum
        }
    }

    /// Config-carrying prototype: counts rows at or after a cutoff.
    #[derive(Debug, Clone)]
    struct CountSince {
        cutoff: Timestamp,
        n: u64,
    }

    impl Accumulator for CountSince {
        type Output = u64;

        fn init(&self) -> Self {
            CountSince { cutoff: self.cutoff, n: 0 }
        }

        fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
            if row.start >= self.cutoff {
                self.n += 1;
            }
        }

        fn merge(&mut self, other: Self) {
            self.n += other.n;
        }

        fn finish(self, _ds: &Dataset) -> u64 {
            self.n
        }
    }

    fn dataset(rows: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("s", SourceKind::Dedicated));
        let c = b.add_country("X");
        let w = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(TaskType::new("t"));
        let t0 = Timestamp::from_ymd(2015, 1, 1);
        let batch = b.add_batch(Batch::new(tt, t0).with_html("<p/>"));
        b.reserve_instances(rows);
        for i in 0..rows {
            let start = t0 + Duration::from_secs(i as i64);
            b.add_instance(TaskInstance {
                batch,
                item: ItemId::new(0),
                worker: w,
                start,
                end: start + Duration::from_secs(30),
                // Varied magnitudes make float addition order-sensitive.
                trust: if i % 3 == 0 { 1.0e-4 } else { 0.875 },
                answer: Answer::Choice((i % 2) as u16),
            });
        }
        b.finish().unwrap()
    }

    #[test]
    fn matches_sequential_fold() {
        let ds = dataset(20_001); // several chunks plus a remainder
        let expected: f64 = ds.instances.trust_col().iter().map(|&t| f64::from(t)).sum();
        // Same chunking as the engine, folded sequentially.
        let got = ScanPass::run(&ds, &TrustSum::default());
        let mut manual = 0.0;
        for lo in (0..ds.instances.len()).step_by(ScanPass::CHUNK) {
            let hi = (lo + ScanPass::CHUNK).min(ds.instances.len());
            let mut part = 0.0;
            for i in lo..hi {
                part += f64::from(ds.instances.trust_col()[i]);
            }
            manual += part;
        }
        assert_eq!(got.to_bits(), manual.to_bits());
        assert!((got - expected).abs() < 1e-6);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let ds = dataset(50_000);
        let mut baseline = None;
        for threads in [1, 2, 3, 4, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let sum = pool.install(|| ScanPass::run(&ds, &TrustSum::default()));
            let bits = sum.to_bits();
            match baseline {
                None => baseline = Some(bits),
                Some(b) => assert_eq!(bits, b, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn tuple_fusion_runs_one_pass() {
        let ds = dataset(10_000);
        let before = ScanPass::full_scan_count();
        let cutoff = Timestamp::from_ymd(2015, 1, 1) + Duration::from_secs(5_000);
        let proto = (TrustSum::default(), CountSince { cutoff, n: 0 });
        let (sum, since) = ScanPass::run(&ds, &proto);
        assert_eq!(ScanPass::full_scan_count() - before, 1, "fused = one pass");
        assert!(sum > 0.0);
        assert_eq!(since, 5_000);
    }

    /// Columnar twin of [`TrustSum`]: overrides `accept_chunk` with a
    /// tight fold over the trust column slice — same values, same order,
    /// so the float bits must match the row-loop default exactly.
    #[derive(Debug, Default)]
    struct ColumnarTrustSum {
        sum: f64,
    }

    impl Accumulator for ColumnarTrustSum {
        type Output = f64;

        fn init(&self) -> Self {
            ColumnarTrustSum::default()
        }

        fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
            self.sum += f64::from(row.trust);
        }

        fn accept_chunk(
            &mut self,
            _ds: &Dataset,
            _base: usize,
            cols: &InstanceColumns,
            range: std::ops::Range<usize>,
        ) {
            for &t in &cols.trust_col()[range] {
                self.sum += f64::from(t);
            }
        }

        fn merge(&mut self, other: Self) {
            self.sum += other.sum;
        }

        fn finish(self, _ds: &Dataset) -> f64 {
            self.sum
        }
    }

    #[test]
    fn columnar_override_is_bit_identical_to_row_loop() {
        let ds = dataset(3 * ScanPass::CHUNK + 4321);
        let row_loop = ScanPass::run(&ds, &TrustSum::default()).to_bits();
        let columnar = ScanPass::run(&ds, &ColumnarTrustSum::default()).to_bits();
        assert_eq!(columnar, row_loop);
        // And inside a tuple: the macro forwards accept_chunk per element.
        let (a, b) = ScanPass::run(&ds, &(ColumnarTrustSum::default(), TrustSum::default()));
        assert_eq!(a.to_bits(), row_loop);
        assert_eq!(b.to_bits(), row_loop);
    }

    #[test]
    fn empty_table_is_fine() {
        let ds = DatasetBuilder::new().finish().unwrap();
        assert_eq!(ScanPass::run(&ds, &TrustSum::default()), 0.0);
    }

    #[test]
    fn shard_count_is_bit_invisible() {
        // The heart of the sharding contract: planned, physically sharded,
        // and streamed scans all reproduce the monolithic float bits, at
        // any shard count crossed with any thread count.
        let ds = dataset(3 * ScanPass::CHUNK + 1234);
        let baseline = ScanPass::run(&ds, &TrustSum::default()).to_bits();
        for threads in [1, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                for shards in [1, 2, 3, 8, 100] {
                    let plan = crate::shard::ShardPlan::new(ds.instances.len(), shards);
                    let planned = ScanPass::run_plan(&ds, &plan, &TrustSum::default());
                    assert_eq!(planned.to_bits(), baseline, "plan {shards}x{threads}");

                    let sharded = crate::shard::ShardedColumns::split(ds.instances.clone(), shards);
                    let physical = ScanPass::run_sharded(&ds, &sharded, &TrustSum::default());
                    assert_eq!(physical.to_bits(), baseline, "sharded {shards}x{threads}");

                    let blocks = sharded
                        .iter_shards()
                        .map(|(base, s)| Ok::<_, ()>((base, s.clone())))
                        .collect::<Vec<_>>();
                    let streamed =
                        ScanPass::run_stream(&ds, &TrustSum::default(), blocks.into_iter())
                            .unwrap();
                    assert_eq!(streamed.to_bits(), baseline, "stream {shards}x{threads}");
                }
            });
        }
    }

    #[test]
    fn sharded_scans_count_as_one_pass_and_ids_stay_global() {
        let ds = dataset(2 * ScanPass::CHUNK + 10);
        // Accumulator that records the largest id it saw: proves shard
        // bases offset local rows back into global instance ids.
        #[derive(Debug, Default)]
        struct MaxId(u64);
        impl Accumulator for MaxId {
            type Output = u64;
            fn init(&self) -> Self {
                MaxId::default()
            }
            fn accept(&mut self, _ds: &Dataset, id: InstanceId, _row: InstanceRef<'_>) {
                self.0 = self.0.max(u64::from(id.raw()));
            }
            fn merge(&mut self, other: Self) {
                self.0 = self.0.max(other.0);
            }
            fn finish(self, _ds: &Dataset) -> u64 {
                self.0
            }
        }
        let before = ScanPass::full_scan_count();
        let sharded = crate::shard::ShardedColumns::split(ds.instances.clone(), 3);
        let max_id = ScanPass::run_sharded(&ds, &sharded, &MaxId::default());
        assert_eq!(ScanPass::full_scan_count() - before, 1, "one fused pass");
        assert_eq!(max_id, ds.instances.len() as u64 - 1);
    }

    #[test]
    fn stream_fold_sink_matches_monolithic_scan() {
        let ds = dataset(3 * ScanPass::CHUNK + 77);
        let baseline = ScanPass::run(&ds, &TrustSum::default()).to_bits();
        for shards in [1, 2, 5] {
            let sharded = crate::shard::ShardedColumns::split(ds.instances.clone(), shards);
            let proto = TrustSum::default();
            let before = ScanPass::full_scan_count();
            let mut fold = StreamFold::new(&ds, &proto);
            for (base, shard) in sharded.iter_shards() {
                assert_eq!(fold.rows(), base);
                fold.flush(base, shard).unwrap();
            }
            assert_eq!(fold.rows(), ds.instances.len());
            assert_eq!(fold.finish().to_bits(), baseline, "shards={shards}");
            assert_eq!(ScanPass::full_scan_count() - before, 1, "fold = one pass");
        }
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn stream_fold_rejects_gaps() {
        let ds = dataset(ScanPass::CHUNK);
        let proto = TrustSum::default();
        let mut fold = StreamFold::new(&ds, &proto);
        let _ = fold.flush(ScanPass::CHUNK, &ds.instances);
    }

    #[test]
    fn stream_errors_abort_the_scan() {
        let ds = dataset(ScanPass::CHUNK);
        let blocks = vec![Ok((0, ds.instances.clone())), Err("disk died")];
        let got = ScanPass::run_stream(&ds, &TrustSum::default(), blocks.into_iter());
        assert_eq!(got.unwrap_err(), "disk died");
    }

    #[test]
    #[should_panic(expected = "CHUNK-aligned")]
    fn misaligned_shard_boundary_is_rejected() {
        // A short (non-CHUNK-multiple) shard followed by another would
        // split a chunk across shards — exactly the float-order hazard
        // the alignment invariant exists to prevent.
        let ds = dataset(100);
        let blocks = vec![Ok::<_, ()>((0, ds.instances.clone())), Ok((100, ds.instances.clone()))];
        let _ = ScanPass::run_stream(&ds, &TrustSum::default(), blocks.into_iter());
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn out_of_order_shards_are_rejected() {
        let ds = dataset(ScanPass::CHUNK);
        let blocks = vec![Ok::<_, ()>((ScanPass::CHUNK, ds.instances.clone()))];
        let _ = ScanPass::run_stream(&ds, &TrustSum::default(), blocks.into_iter());
    }
}
