//! Dataset querying: slicing to sub-populations and the fused scan engine.
//!
//! Two access patterns cover the study's needs:
//!
//! * **Slicing** materializes a sub-dataset (a time window, a labor source)
//!   as a standalone [`Dataset`] so any analysis runs on it unchanged.
//! * **Scanning** ([`scan`]) streams the instance table once through any
//!   number of registered [`scan::Accumulator`]s, so producing N analytics
//!   outputs costs one deterministic parallel pass instead of N.

pub mod scan;

pub use scan::{Accumulator, ScanPass, StreamFold};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::id::{BatchId, SourceId};
use crate::time::Timestamp;

impl Dataset {
    /// The sub-dataset of batches created in `[from, to)` and their
    /// instances.
    pub fn slice_window(&self, from: Timestamp, to: Timestamp) -> Dataset {
        self.slice_by(|ds, batch| {
            let t = ds.batch(batch).created_at;
            t >= from && t < to
        })
    }

    /// The sub-dataset of instances performed by workers of one source.
    /// Batch rows are kept when they retain at least one instance (or had
    /// none to begin with and are dropped).
    pub fn slice_source(&self, source: SourceId) -> Dataset {
        // Keep batches that have ≥1 instance from this source.
        let mut keep = vec![false; self.batches.len()];
        for inst in &self.instances {
            if self.worker(inst.worker).source == source {
                keep[inst.batch.index()] = true;
            }
        }
        let filtered = self.slice_by(|_, b| keep[b.index()]);
        // Also drop instances not from the source (a batch may mix).
        let mut b = DatasetBuilder::new();
        copy_entities(&filtered, &mut b);
        for batch in &filtered.batches {
            b.add_batch(batch.clone());
        }
        for inst in &filtered.instances {
            if filtered.worker(inst.worker).source == source {
                b.add_instance(inst.to_owned());
            }
        }
        b.finish_unchecked()
    }

    /// Generic batch-predicate slice.
    pub fn slice_by(&self, keep_batch: impl Fn(&Dataset, BatchId) -> bool) -> Dataset {
        let mut b = DatasetBuilder::new();
        copy_entities(self, &mut b);
        // Remap kept batches to dense ids.
        let mut remap: Vec<Option<BatchId>> = vec![None; self.batches.len()];
        for (i, batch) in self.batches.iter().enumerate() {
            if keep_batch(self, BatchId::from_usize(i)) {
                remap[i] = Some(b.add_batch(batch.clone()));
            }
        }
        for inst in &self.instances {
            if let Some(new_batch) = remap[inst.batch.index()] {
                let mut owned = inst.to_owned();
                owned.batch = new_batch;
                b.add_instance(owned);
            }
        }
        b.finish_unchecked()
    }
}

fn copy_entities(ds: &Dataset, b: &mut DatasetBuilder) {
    for s in &ds.sources {
        b.add_source(s.clone());
    }
    for c in &ds.countries {
        b.add_country(c.name.clone());
    }
    for w in &ds.workers {
        b.add_worker(*w);
    }
    for t in &ds.task_types {
        b.add_task_type(t.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::dataset::TaskInstance;
    use crate::id::ItemId;
    use crate::task::{Batch, TaskType};
    use crate::time::Duration;
    use crate::worker::{Source, SourceKind, Worker};

    fn build() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s1 = b.add_source(Source::new("alpha", SourceKind::Dedicated));
        let s2 = b.add_source(Source::new("beta", SourceKind::OnDemand));
        let c = b.add_country("X");
        let w1 = b.add_worker(Worker::new(s1, c));
        let w2 = b.add_worker(Worker::new(s2, c));
        let tt = b.add_task_type(TaskType::new("t"));
        let jan = Timestamp::from_ymd(2015, 1, 10);
        let jun = Timestamp::from_ymd(2015, 6, 10);
        let b1 = b.add_batch(Batch::new(tt, jan).with_html("<p>a</p>"));
        let b2 = b.add_batch(Batch::new(tt, jun).with_html("<p>b</p>"));
        for (batch, worker, t0) in [(b1, w1, jan), (b1, w2, jan), (b2, w1, jun)] {
            b.add_instance(TaskInstance {
                batch,
                item: ItemId::new(0),
                worker,
                start: t0 + Duration::from_secs(100),
                end: t0 + Duration::from_secs(160),
                trust: 0.9,
                answer: Answer::Choice(0),
            });
        }
        b.finish().unwrap()
    }

    #[test]
    fn window_slice_keeps_only_in_range_batches() {
        let ds = build();
        let s = ds.slice_window(Timestamp::from_ymd(2015, 1, 1), Timestamp::from_ymd(2015, 3, 1));
        assert_eq!(s.batches.len(), 1);
        assert_eq!(s.instances.len(), 2);
        assert!(s.validate().is_ok(), "slices stay consistent");
        // Instances were re-pointed at the dense batch id.
        assert!(s.instances.iter().all(|i| i.batch == BatchId::new(0)));
    }

    #[test]
    fn window_slice_is_half_open() {
        let ds = build();
        let jan = Timestamp::from_ymd(2015, 1, 10);
        let empty = ds.slice_window(jan - Duration::from_days(5), jan);
        assert_eq!(empty.batches.len(), 0, "end-exclusive");
        let one = ds.slice_window(jan, jan + Duration::from_secs(1));
        assert_eq!(one.batches.len(), 1, "start-inclusive");
    }

    #[test]
    fn source_slice_keeps_only_that_sources_instances() {
        let ds = build();
        let alpha = ds.slice_source(SourceId::new(0));
        assert_eq!(alpha.instances.len(), 2, "w1's instances in both batches");
        for inst in &alpha.instances {
            assert_eq!(alpha.worker(inst.worker).source, SourceId::new(0));
        }
        assert!(alpha.validate().is_ok());
        let beta = ds.slice_source(SourceId::new(1));
        assert_eq!(beta.instances.len(), 1);
        assert_eq!(beta.batches.len(), 1, "only the batch beta touched");
    }

    #[test]
    fn entity_tables_are_preserved_whole() {
        let ds = build();
        let s = ds.slice_window(Timestamp::from_ymd(2020, 1, 1), Timestamp::from_ymd(2021, 1, 1));
        assert_eq!(s.workers.len(), ds.workers.len());
        assert_eq!(s.sources.len(), ds.sources.len());
        assert_eq!(s.task_types.len(), ds.task_types.len());
        assert_eq!(s.instances.len(), 0);
    }

    #[test]
    fn slice_of_slice_composes() {
        let ds = build();
        let all = ds.slice_window(Timestamp::from_ymd(2014, 1, 1), Timestamp::from_ymd(2016, 1, 1));
        let narrowed = all.slice_source(SourceId::new(0));
        assert_eq!(narrowed.instances.len(), 2);
    }
}
