//! CSV import/export of datasets (RFC-4180-style quoting).
//!
//! The marketplace delivered its data as per-batch flat files (paper §2.3);
//! this module provides the equivalent interchange format so datasets can be
//! moved between the simulator, external tooling, and the analytics layer.
//! Six tables are written: `sources`, `countries`, `workers`, `task_types`,
//! `batches`, `instances`, plus a [`Manifest`] (`manifest.csv`, written
//! last) recording each table's row count and content digest so a resilient
//! reader can tell recovered data from silently damaged data.
//!
//! Every file lands via a temp sibling + rename, so an interrupted export
//! never leaves a torn table: either the old file survives intact or the
//! new one is complete.

use std::fmt::Write as _;
use std::fs;
use std::io::{self};
use std::path::Path;

use crate::answer::Answer;
use crate::dataset::{Dataset, DatasetBuilder, TaskInstance};
use crate::error::{CoreError, Result};
use crate::id::{BatchId, CountryId, ItemId, SourceId, TaskTypeId, WorkerId};
use crate::labels::LabelSet;
use crate::task::{Batch, TaskType};
use crate::time::Timestamp;
use crate::worker::{Source, SourceKind, Worker};

/// Escapes one CSV field: quotes when it contains a comma, quote, CR or LF.
pub fn escape_field(field: &str, out: &mut String) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Splits one CSV record (which may span multiple physical lines when quoted
/// fields contain newlines) into fields. `records` iterates a whole document.
pub fn parse_records(text: &str) -> CsvRecords<'_> {
    CsvRecords { rest: text, line: 0 }
}

/// Iterator over CSV records; yields `(line_number, fields)`.
pub struct CsvRecords<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Iterator for CsvRecords<'a> {
    type Item = Result<(usize, Vec<String>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        self.line += 1;
        let start_line = self.line;
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = self.rest.char_indices();
        let mut in_quotes = false;
        let mut after_quote = false; // just closed a quote; expect , or EOL
        loop {
            match chars.next() {
                None => {
                    if in_quotes {
                        return Some(Err(CoreError::Csv {
                            line: start_line,
                            message: "unterminated quoted field".into(),
                        }));
                    }
                    self.rest = "";
                    fields.push(std::mem::take(&mut cur));
                    return Some(Ok((start_line, fields)));
                }
                Some((pos, ch)) => {
                    if in_quotes {
                        if ch == '"' {
                            // Peek: doubled quote = literal quote.
                            if self.rest[pos + 1..].starts_with('"') {
                                cur.push('"');
                                chars.next();
                            } else {
                                in_quotes = false;
                                after_quote = true;
                            }
                        } else {
                            if ch == '\n' {
                                self.line += 1;
                            }
                            cur.push(ch);
                        }
                        continue;
                    }
                    match ch {
                        '"' if cur.is_empty() && !after_quote => in_quotes = true,
                        '"' => {
                            return Some(Err(CoreError::Csv {
                                line: start_line,
                                message: "stray quote inside unquoted field".into(),
                            }))
                        }
                        ',' => {
                            fields.push(std::mem::take(&mut cur));
                            after_quote = false;
                        }
                        '\r' => {} // tolerate CRLF
                        '\n' => {
                            self.rest = &self.rest[pos + 1..];
                            fields.push(std::mem::take(&mut cur));
                            return Some(Ok((start_line, fields)));
                        }
                        _ if after_quote => {
                            return Some(Err(CoreError::Csv {
                                line: start_line,
                                message: "data after closing quote".into(),
                            }))
                        }
                        _ => cur.push(ch),
                    }
                }
            }
        }
    }
}

impl CsvRecords<'_> {
    /// Skips past the next physical line boundary so iteration can continue
    /// after a malformed record. Always makes progress.
    fn recover(&mut self) {
        match self.rest.find('\n') {
            Some(pos) => self.rest = &self.rest[pos + 1..],
            None => self.rest = "",
        }
    }
}

/// Like [`parse_records`], but a malformed record is reported once and then
/// skipped (to the next physical line) instead of poisoning the iterator —
/// the record-level recovery primitive the quarantining ingest path needs.
pub fn parse_records_lossy(text: &str) -> LossyRecords<'_> {
    LossyRecords { inner: parse_records(text) }
}

/// Iterator over CSV records with per-record error recovery.
pub struct LossyRecords<'a> {
    inner: CsvRecords<'a>,
}

impl Iterator for LossyRecords<'_> {
    type Item = Result<(usize, Vec<String>)>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        if item.is_err() {
            self.inner.recover();
        }
        Some(item)
    }
}

fn write_record(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_field(f, out);
    }
    out.push('\n');
}

fn answer_to_field(a: &Answer) -> String {
    match a {
        Answer::Choice(i) => format!("C:{i}"),
        Answer::Text(t) => format!("T:{t}"),
        Answer::Skipped => "S".to_owned(),
    }
}

fn answer_from_field(s: &str, line: usize) -> Result<Answer> {
    if s == "S" {
        return Ok(Answer::Skipped);
    }
    if let Some(rest) = s.strip_prefix("C:") {
        return rest
            .parse()
            .map(Answer::Choice)
            .map_err(|_| CoreError::Csv { line, message: format!("bad choice `{rest}`") });
    }
    if let Some(rest) = s.strip_prefix("T:") {
        return Ok(Answer::Text(rest.to_owned()));
    }
    Err(CoreError::Csv { line, message: format!("bad answer `{s}`") })
}

fn kind_to_str(k: SourceKind) -> &'static str {
    k.name()
}

fn kind_from_str(s: &str, line: usize) -> Result<SourceKind> {
    SourceKind::ALL
        .into_iter()
        .find(|k| k.name() == s)
        .ok_or_else(|| CoreError::Csv { line, message: format!("bad source kind `{s}`") })
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// The six dataset tables, in dependency (load) order: referenced tables
/// come before their referrers, so a single forward pass can validate ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table {
    /// Labor sources (`sources.csv`).
    Sources,
    /// Worker countries (`countries.csv`).
    Countries,
    /// Workers (`workers.csv`); references sources + countries.
    Workers,
    /// Distinct task types (`task_types.csv`).
    TaskTypes,
    /// Batches (`batches.csv`); references task types.
    Batches,
    /// Task instances (`instances.csv`); references batches + workers.
    Instances,
}

impl Table {
    /// All tables, in load order.
    pub const ALL: [Table; 6] = [
        Table::Sources,
        Table::Countries,
        Table::Workers,
        Table::TaskTypes,
        Table::Batches,
        Table::Instances,
    ];

    /// Stable table name (manifest and report rendering).
    pub fn name(self) -> &'static str {
        match self {
            Table::Sources => "sources",
            Table::Countries => "countries",
            Table::Workers => "workers",
            Table::TaskTypes => "task_types",
            Table::Batches => "batches",
            Table::Instances => "instances",
        }
    }

    /// The table's file name inside a dataset directory.
    pub fn file_name(self) -> &'static str {
        match self {
            Table::Sources => "sources.csv",
            Table::Countries => "countries.csv",
            Table::Workers => "workers.csv",
            Table::TaskTypes => "task_types.csv",
            Table::Batches => "batches.csv",
            Table::Instances => "instances.csv",
        }
    }

    /// The expected header record.
    pub fn header(self) -> &'static str {
        match self {
            Table::Sources => "name,kind",
            Table::Countries => "name",
            Table::Workers => "source,country",
            Table::TaskTypes => "title,goals,operators,data_types,choice_arity",
            Table::Batches => "task_type,created_at,sampled,html",
            Table::Instances => "batch,item,worker,start,end,trust,answer",
        }
    }

    /// Number of fields per record.
    pub fn arity(self) -> usize {
        self.header().split(',').count()
    }

    /// Whether row *position* is meaningful: entity tables are referenced
    /// by row index, so their digest is order-sensitive; instances carry
    /// explicit ids and may arrive out of order, so their digest is over
    /// the row multiset (order-invariant).
    pub fn positional(self) -> bool {
        !matches!(self, Table::Instances)
    }

    /// Looks a table up by its stable [`Table::name`].
    pub fn from_name(name: &str) -> Option<Table> {
        Table::ALL.into_iter().find(|t| t.name() == name)
    }
}

// ---------------------------------------------------------------------------
// Per-record serializers (shared by export, digests, and re-verification)
// ---------------------------------------------------------------------------

/// Appends one `sources` record (including trailing newline).
pub fn source_record(s: &Source, out: &mut String) {
    write_record(out, &[&s.name, kind_to_str(s.kind)]);
}

/// Appends one `countries` record.
pub fn country_record(name: &str, out: &mut String) {
    write_record(out, &[name]);
}

/// Appends one `workers` record.
pub fn worker_record(w: &Worker, out: &mut String) {
    write_record(out, &[&w.source.raw().to_string(), &w.country.raw().to_string()]);
}

/// Appends one `task_types` record.
pub fn task_type_record(t: &TaskType, out: &mut String) {
    write_record(
        out,
        &[
            &t.title,
            &t.goals.bits().to_string(),
            &t.operators.bits().to_string(),
            &t.data_types.bits().to_string(),
            &t.choice_arity.to_string(),
        ],
    );
}

/// Appends one `batches` record.
pub fn batch_record(b: &Batch, out: &mut String) {
    write_record(
        out,
        &[
            &b.task_type.raw().to_string(),
            &b.created_at.as_secs().to_string(),
            if b.sampled { "1" } else { "0" },
            b.html.as_deref().unwrap_or(""),
        ],
    );
}

/// Appends one `instances` record.
pub fn instance_record(i: crate::dataset::InstanceRef<'_>, out: &mut String) {
    let mut trust_buf = String::new();
    let _ = write!(trust_buf, "{}", i.trust);
    write_record(
        out,
        &[
            &i.batch.raw().to_string(),
            &i.item.raw().to_string(),
            &i.worker.raw().to_string(),
            &i.start.as_secs().to_string(),
            &i.end.as_secs().to_string(),
            &trust_buf,
            &answer_to_field(i.answer),
        ],
    );
}

// ---------------------------------------------------------------------------
// Content digests + manifest
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: full-avalanche 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of one serialized record (FNV-1a folded through [`mix64`]).
pub fn record_hash(record: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in record.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// Streaming content digest over a table's serialized records.
///
/// Entity tables chain record hashes (order-sensitive: their ids are row
/// positions); the instances table uses a wrapping *sum* of record hashes,
/// which is order-invariant but still duplicate-sensitive — so a reordered
/// stream verifies once restored, while a dropped, altered, or extra row
/// does not.
#[derive(Debug, Clone)]
pub struct TableDigest {
    positional: bool,
    state: u64,
}

impl TableDigest {
    /// Fresh digest for `table`.
    pub fn new(table: Table) -> TableDigest {
        TableDigest { positional: table.positional(), state: 0x9e37_79b9_7f4a_7c15 }
    }

    /// Folds one serialized record in.
    pub fn update(&mut self, record: &str) {
        let h = record_hash(record);
        self.state =
            if self.positional { mix64(self.state ^ h) } else { self.state.wrapping_add(h) };
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// File name of the export manifest inside a dataset directory.
pub const MANIFEST_FILE: &str = "manifest.csv";

/// One manifest row: a table's exported row count and content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Which table.
    pub table: Table,
    /// Rows the exporter wrote (excluding the header).
    pub rows: u64,
    /// [`TableDigest`] over the exported records.
    pub digest: u64,
}

/// The export manifest: what the exporter wrote, so a reader can tell
/// recovered-in-full data from silently damaged data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Per-table entries, in [`Table::ALL`] order as exported.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// The entry for `table`, if present.
    pub fn entry(&self, table: Table) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.table == table)
    }

    /// Serializes the manifest (digest as 16-digit lower hex).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("table,rows,digest\n");
        for e in &self.entries {
            let _ = writeln!(out, "{},{},{:016x}", e.table.name(), e.rows, e.digest);
        }
        out
    }

    /// Parses a manifest document; unknown table names are an error.
    pub fn parse(text: &str) -> Result<Manifest> {
        let mut entries = Vec::new();
        for rec in TableReader::new(text, "table,rows,digest")? {
            let (line, f) = rec?;
            let table = Table::from_name(&f[0]).ok_or_else(|| CoreError::Csv {
                line,
                message: format!("unknown table `{}`", f[0]),
            })?;
            let rows = parse_num(&f[1], line, "row count")?;
            let digest = u64::from_str_radix(&f[2], 16)
                .map_err(|_| CoreError::Csv { line, message: format!("bad digest `{}`", f[2]) })?;
            entries.push(ManifestEntry { table, rows, digest });
        }
        Ok(Manifest { entries })
    }
}

/// Serializes one table and computes its manifest entry in the same pass.
pub fn render_table(ds: &Dataset, table: Table) -> (String, ManifestEntry) {
    let mut out = String::with_capacity(if table == Table::Instances {
        // Preallocate roughly: ~40 bytes per row.
        ds.instances.len() * 40 + 64
    } else {
        1024
    });
    out.push_str(table.header());
    out.push('\n');
    let mut digest = TableDigest::new(table);
    let mut rows = 0u64;
    let mut rec = String::new();
    macro_rules! push {
        ($serialize:expr) => {{
            rec.clear();
            $serialize;
            digest.update(&rec);
            out.push_str(&rec);
            rows += 1;
        }};
    }
    match table {
        Table::Sources => {
            for s in &ds.sources {
                push!(source_record(s, &mut rec));
            }
        }
        Table::Countries => {
            for c in &ds.countries {
                push!(country_record(&c.name, &mut rec));
            }
        }
        Table::Workers => {
            for w in &ds.workers {
                push!(worker_record(w, &mut rec));
            }
        }
        Table::TaskTypes => {
            for t in &ds.task_types {
                push!(task_type_record(t, &mut rec));
            }
        }
        Table::Batches => {
            for b in &ds.batches {
                push!(batch_record(b, &mut rec));
            }
        }
        Table::Instances => {
            for i in &ds.instances {
                push!(instance_record(i, &mut rec));
            }
        }
    }
    (out, ManifestEntry { table, rows, digest: digest.finish() })
}

/// Serializes the `sources` table.
pub fn sources_to_csv(ds: &Dataset) -> String {
    render_table(ds, Table::Sources).0
}

/// Serializes the `countries` table.
pub fn countries_to_csv(ds: &Dataset) -> String {
    render_table(ds, Table::Countries).0
}

/// Serializes the `workers` table.
pub fn workers_to_csv(ds: &Dataset) -> String {
    render_table(ds, Table::Workers).0
}

/// Serializes the `task_types` table.
pub fn task_types_to_csv(ds: &Dataset) -> String {
    render_table(ds, Table::TaskTypes).0
}

/// Serializes the `batches` table.
pub fn batches_to_csv(ds: &Dataset) -> String {
    render_table(ds, Table::Batches).0
}

/// Serializes the `instances` table.
pub fn instances_to_csv(ds: &Dataset) -> String {
    render_table(ds, Table::Instances).0
}

/// Writes `content` to `path` via a temp sibling + rename, so a crash mid-
/// write leaves either the previous file intact or the new one complete —
/// never a torn table.
fn write_atomic(path: &Path, content: &str) -> io::Result<()> {
    let mut tmp_name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

/// Writes the six tables as `<name>.csv` files under `dir`, each landed
/// atomically (temp sibling + rename), plus a [`MANIFEST_FILE`] — written
/// last, so a manifest's presence implies every table landed in full.
pub fn export_dir(ds: &Dataset, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut manifest = Manifest::default();
    for table in Table::ALL {
        let (csv, entry) = render_table(ds, table);
        write_atomic(&dir.join(table.file_name()), &csv)?;
        manifest.entries.push(entry);
    }
    write_atomic(&dir.join(MANIFEST_FILE), &manifest.to_csv())
}

struct TableReader<'a> {
    records: CsvRecords<'a>,
    expected_fields: usize,
}

impl<'a> TableReader<'a> {
    fn new(text: &'a str, header: &str) -> Result<Self> {
        let expected_fields = header.split(',').count();
        let mut records = parse_records(text);
        match records.next() {
            Some(Ok((_, fields))) if fields.join(",") == header => {}
            Some(Ok((line, _))) => {
                return Err(CoreError::Csv { line, message: format!("expected header `{header}`") })
            }
            Some(Err(e)) => return Err(e),
            None => return Err(CoreError::Csv { line: 1, message: "empty file".into() }),
        }
        Ok(TableReader { records, expected_fields })
    }
}

impl Iterator for TableReader<'_> {
    type Item = Result<(usize, Vec<String>)>;
    fn next(&mut self) -> Option<Self::Item> {
        let rec = self.records.next()?;
        Some(rec.and_then(|(line, fields)| {
            if fields.len() == 1 && fields[0].is_empty() {
                // Trailing blank line.
                return Err(CoreError::Csv { line, message: "blank record".into() });
            }
            if fields.len() != self.expected_fields {
                return Err(CoreError::Csv {
                    line,
                    message: format!(
                        "expected {} fields, got {}",
                        self.expected_fields,
                        fields.len()
                    ),
                });
            }
            Ok((line, fields))
        }))
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T> {
    s.parse().map_err(|_| CoreError::Csv { line, message: format!("bad {what} `{s}`") })
}

fn expect_arity(f: &[String], table: Table, line: usize) -> Result<()> {
    if f.len() != table.arity() {
        return Err(CoreError::Csv {
            line,
            message: format!("expected {} fields, got {}", table.arity(), f.len()),
        });
    }
    Ok(())
}

/// Parses one `sources` record.
pub fn parse_source_row(f: &[String], line: usize) -> Result<Source> {
    expect_arity(f, Table::Sources, line)?;
    Ok(Source::new(&f[0], kind_from_str(&f[1], line)?))
}

/// Parses one `countries` record (the country name).
pub fn parse_country_row(f: &[String], line: usize) -> Result<String> {
    expect_arity(f, Table::Countries, line)?;
    Ok(f[0].clone())
}

/// Parses one `workers` record.
pub fn parse_worker_row(f: &[String], line: usize) -> Result<Worker> {
    expect_arity(f, Table::Workers, line)?;
    Ok(Worker::new(
        SourceId::new(parse_num(&f[0], line, "source id")?),
        CountryId::new(parse_num(&f[1], line, "country id")?),
    ))
}

/// Parses one `task_types` record.
pub fn parse_task_type_row(f: &[String], line: usize) -> Result<TaskType> {
    expect_arity(f, Table::TaskTypes, line)?;
    let mut tt = TaskType::new(&f[0]);
    tt.goals = LabelSet::from_bits(parse_num(&f[1], line, "goal bits")?)?;
    tt.operators = LabelSet::from_bits(parse_num(&f[2], line, "operator bits")?)?;
    tt.data_types = LabelSet::from_bits(parse_num(&f[3], line, "data-type bits")?)?;
    tt.choice_arity = parse_num(&f[4], line, "choice arity")?;
    Ok(tt)
}

/// Parses one `batches` record. The sampled flag is strict (`0`/`1`): a
/// corrupted flag should be caught, not silently read as "unsampled".
pub fn parse_batch_row(f: &[String], line: usize) -> Result<Batch> {
    expect_arity(f, Table::Batches, line)?;
    let mut batch = Batch::new(
        TaskTypeId::new(parse_num(&f[0], line, "task type id")?),
        Timestamp::from_secs(parse_num(&f[1], line, "created_at")?),
    );
    batch.sampled = match f[2].as_str() {
        "1" => true,
        "0" => false,
        other => {
            return Err(CoreError::Csv { line, message: format!("bad sampled flag `{other}`") })
        }
    };
    if !f[3].is_empty() {
        batch.html = Some(f[3].as_str().into());
    }
    Ok(batch)
}

/// Parses one `instances` record.
pub fn parse_instance_row(f: &[String], line: usize) -> Result<TaskInstance> {
    expect_arity(f, Table::Instances, line)?;
    Ok(TaskInstance {
        batch: BatchId::new(parse_num(&f[0], line, "batch id")?),
        item: ItemId::new(parse_num(&f[1], line, "item id")?),
        worker: WorkerId::new(parse_num(&f[2], line, "worker id")?),
        start: Timestamp::from_secs(parse_num(&f[3], line, "start")?),
        end: Timestamp::from_secs(parse_num(&f[4], line, "end")?),
        trust: parse_num(&f[5], line, "trust")?,
        answer: answer_from_field(&f[6], line)?,
    })
}

/// Reads the six `<name>.csv` tables from `dir` and validates the result.
///
/// This is the strict path: the first malformed byte aborts the load. The
/// `crowd-ingest` crate layers quarantine, retry, and manifest verification
/// on the same record parsers for untrusted input.
pub fn import_dir(dir: &Path) -> Result<Dataset> {
    let read = |name: &str| -> Result<String> {
        fs::read_to_string(dir.join(name))
            .map_err(|e| CoreError::Csv { line: 0, message: format!("{name}: {e}") })
    };
    let mut b = DatasetBuilder::new();

    for rec in TableReader::new(&read("sources.csv")?, Table::Sources.header())? {
        let (line, f) = rec?;
        b.add_source(parse_source_row(&f, line)?);
    }
    for rec in TableReader::new(&read("countries.csv")?, Table::Countries.header())? {
        let (line, f) = rec?;
        b.add_country(&parse_country_row(&f, line)?);
    }
    for rec in TableReader::new(&read("workers.csv")?, Table::Workers.header())? {
        let (line, f) = rec?;
        b.add_worker(parse_worker_row(&f, line)?);
    }
    for rec in TableReader::new(&read("task_types.csv")?, Table::TaskTypes.header())? {
        let (line, f) = rec?;
        b.add_task_type(parse_task_type_row(&f, line)?);
    }
    for rec in TableReader::new(&read("batches.csv")?, Table::Batches.header())? {
        let (line, f) = rec?;
        b.add_batch(parse_batch_row(&f, line)?);
    }
    for rec in TableReader::new(&read("instances.csv")?, Table::Instances.header())? {
        let (line, f) = rec?;
        b.add_instance(parse_instance_row(&f, line)?);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{DataType, Goal, Operator};
    use crate::time::Duration;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("clix,sense \"quoted\"", SourceKind::Dedicated));
        let c = b.add_country("USA");
        let w = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(
            TaskType::new("find \"urls\", quickly\nplease")
                .with_goal(Goal::LanguageUnderstanding)
                .with_operator(Operator::Gather)
                .with_data_type(DataType::Webpage),
        );
        let t0 = Timestamp::from_ymd(2015, 6, 1);
        let batch =
            b.add_batch(Batch::new(tt, t0).with_html("<div class=\"a,b\">\n<p>hi</p></div>"));
        b.add_batch(Batch::new(tt, t0 + Duration::from_days(1)).unsampled());
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(0),
            worker: w,
            start: t0 + Duration::from_secs(100),
            end: t0 + Duration::from_secs(160),
            trust: 0.875,
            answer: Answer::Text("http://example.com, \"the\" site".into()),
        });
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(0),
            worker: w,
            start: t0 + Duration::from_secs(400),
            end: t0 + Duration::from_secs(460),
            trust: 0.5,
            answer: Answer::Skipped,
        });
        b.finish().unwrap()
    }

    #[test]
    fn escape_roundtrip_simple() {
        let mut out = String::new();
        escape_field("plain", &mut out);
        assert_eq!(out, "plain");
    }

    #[test]
    fn escape_roundtrip_tricky() {
        let mut out = String::new();
        escape_field("a,\"b\"\nc", &mut out);
        assert_eq!(out, "\"a,\"\"b\"\"\nc\"");
        let parsed: Vec<_> = parse_records(&out).map(|r| r.unwrap().1).collect();
        assert_eq!(parsed, vec![vec!["a,\"b\"\nc".to_string()]]);
    }

    #[test]
    fn parse_multiline_record_counts_lines() {
        let doc = "a,\"x\ny\"\nb,c\n";
        let recs: Vec<_> = parse_records(doc).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, vec!["a", "x\ny"]);
        assert_eq!(recs[1].1, vec!["b", "c"]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        let doc = "a,\"open\n";
        let err = parse_records(doc).next().unwrap().unwrap_err();
        assert!(matches!(err, CoreError::Csv { .. }));
    }

    #[test]
    fn parse_rejects_stray_quote() {
        let doc = "ab\"c,d\n";
        assert!(parse_records(doc).next().unwrap().is_err());
    }

    #[test]
    fn full_roundtrip_via_dir() {
        let ds = sample();
        let dir = std::env::temp_dir().join(format!("crowd_csv_test_{}", std::process::id()));
        export_dir(&ds, &dir).unwrap();
        let back = import_dir(&dir).unwrap();
        assert_eq!(back.sources, ds.sources);
        assert_eq!(back.countries, ds.countries);
        assert_eq!(back.workers, ds.workers);
        assert_eq!(back.task_types, ds.task_types);
        assert_eq!(back.batches, ds.batches);
        assert_eq!(back.instances, ds.instances);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn answer_field_roundtrip() {
        for a in [Answer::Choice(7), Answer::Text("x,y".into()), Answer::Skipped] {
            let f = answer_to_field(&a);
            assert_eq!(answer_from_field(&f, 1).unwrap(), a);
        }
        assert!(answer_from_field("Q:9", 1).is_err());
        assert!(answer_from_field("C:notanum", 1).is_err());
    }

    #[test]
    fn import_rejects_wrong_header() {
        let dir = std::env::temp_dir().join(format!("crowd_csv_badhdr_{}", std::process::id()));
        export_dir(&sample(), &dir).unwrap();
        std::fs::write(dir.join("workers.csv"), "wrong,header\n1,2\n").unwrap();
        assert!(import_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_writes_a_matching_manifest() {
        let ds = sample();
        let dir = std::env::temp_dir().join(format!("crowd_csv_manifest_{}", std::process::id()));
        export_dir(&ds, &dir).unwrap();
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(m.entries.len(), Table::ALL.len());
        assert_eq!(m.entry(Table::Instances).unwrap().rows, ds.instances.len() as u64);
        // Recompute each table's digest from the rendered CSV: must agree.
        for table in Table::ALL {
            let (_, entry) = render_table(&ds, table);
            assert_eq!(m.entry(table), Some(&entry), "{}", table.name());
        }
        // No temp siblings left behind.
        for f in std::fs::read_dir(&dir).unwrap() {
            let name = f.unwrap().file_name();
            assert!(!name.to_string_lossy().ends_with(".tmp"), "stale {name:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn positional_digest_is_order_sensitive_orderless_is_not() {
        let mut a = TableDigest::new(Table::Workers);
        let mut b = TableDigest::new(Table::Workers);
        a.update("1,2\n");
        a.update("3,4\n");
        b.update("3,4\n");
        b.update("1,2\n");
        assert_ne!(a.finish(), b.finish(), "entity digests are positional");

        let mut a = TableDigest::new(Table::Instances);
        let mut b = TableDigest::new(Table::Instances);
        a.update("1,2\n");
        a.update("3,4\n");
        b.update("3,4\n");
        b.update("1,2\n");
        assert_eq!(a.finish(), b.finish(), "instance digest is order-invariant");

        // … but still duplicate-sensitive.
        b.update("1,2\n");
        assert_ne!(a.finish(), b.finish(), "duplicates change the digest");
    }

    #[test]
    fn lossy_parse_recovers_after_malformed_records() {
        let doc = "a,b\nbad\"quote,x\nc,d\n";
        let items: Vec<_> = parse_records_lossy(doc).collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_ref().unwrap().1, vec!["a", "b"]);
        assert!(items[1].is_err());
        assert_eq!(items[2].as_ref().unwrap().1, vec!["c", "d"]);
    }

    #[test]
    fn lossy_parse_terminates_on_unterminated_quote() {
        let doc = "a,b\n\"open never closes\nc,d\n";
        let items: Vec<_> = parse_records_lossy(doc).collect();
        assert!(items.iter().any(|r| r.is_err()));
        assert!(items.len() <= 4, "bounded output, no hang");
    }

    #[test]
    fn row_parsers_reject_wrong_arity_with_line() {
        let f = vec!["1".to_string()];
        for (name, err) in [
            ("workers", parse_worker_row(&f, 7).unwrap_err()),
            ("instances", parse_instance_row(&f, 7).unwrap_err()),
            ("batches", parse_batch_row(&f, 7).unwrap_err()),
        ] {
            match err {
                CoreError::Csv { line, message } => {
                    assert_eq!(line, 7, "{name}");
                    assert!(message.contains("fields"), "{name}: {message}");
                }
                other => panic!("{name}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn batch_row_sampled_flag_is_strict() {
        let f: Vec<String> = ["0", "100", "2", "<p>x</p>"].iter().map(|s| s.to_string()).collect();
        assert!(parse_batch_row(&f, 3).is_err());
    }

    #[test]
    fn table_enum_is_consistent() {
        for t in Table::ALL {
            assert_eq!(t.arity(), t.header().split(',').count());
            assert!(t.file_name().starts_with(t.name()));
            assert_eq!(Table::from_name(t.name()), Some(t));
        }
        assert_eq!(Table::from_name("nope"), None);
        assert!(!Table::Instances.positional());
        assert!(Table::Workers.positional());
    }

    #[test]
    fn manifest_roundtrips_through_csv() {
        let m = Manifest {
            entries: vec![
                ManifestEntry { table: Table::Sources, rows: 3, digest: 0xdead_beef },
                ManifestEntry { table: Table::Instances, rows: 9, digest: u64::MAX },
            ],
        };
        assert_eq!(Manifest::parse(&m.to_csv()).unwrap(), m);
        assert!(Manifest::parse("table,rows,digest\nnope,1,00\n").is_err());
        assert!(Manifest::parse("table,rows,digest\nsources,1,zz\n").is_err());
    }

    #[test]
    fn import_rejects_wrong_arity() {
        let dir = std::env::temp_dir().join(format!("crowd_csv_badarity_{}", std::process::id()));
        export_dir(&sample(), &dir).unwrap();
        std::fs::write(dir.join("workers.csv"), "source,country\n1\n").unwrap();
        assert!(import_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
