//! CSV import/export of datasets (RFC-4180-style quoting).
//!
//! The marketplace delivered its data as per-batch flat files (paper §2.3);
//! this module provides the equivalent interchange format so datasets can be
//! moved between the simulator, external tooling, and the analytics layer.
//! Six tables are written: `sources`, `countries`, `workers`, `task_types`,
//! `batches`, `instances`.

use std::fmt::Write as _;
use std::fs;
use std::io::{self};
use std::path::Path;

use crate::answer::Answer;
use crate::dataset::{Dataset, DatasetBuilder, TaskInstance};
use crate::error::{CoreError, Result};
use crate::id::{BatchId, CountryId, ItemId, SourceId, TaskTypeId, WorkerId};
use crate::labels::LabelSet;
use crate::task::{Batch, TaskType};
use crate::time::Timestamp;
use crate::worker::{Source, SourceKind, Worker};

/// Escapes one CSV field: quotes when it contains a comma, quote, CR or LF.
pub fn escape_field(field: &str, out: &mut String) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Splits one CSV record (which may span multiple physical lines when quoted
/// fields contain newlines) into fields. `records` iterates a whole document.
pub fn parse_records(text: &str) -> CsvRecords<'_> {
    CsvRecords { rest: text, line: 0 }
}

/// Iterator over CSV records; yields `(line_number, fields)`.
pub struct CsvRecords<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Iterator for CsvRecords<'a> {
    type Item = Result<(usize, Vec<String>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        self.line += 1;
        let start_line = self.line;
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = self.rest.char_indices();
        let mut in_quotes = false;
        let mut after_quote = false; // just closed a quote; expect , or EOL
        loop {
            match chars.next() {
                None => {
                    if in_quotes {
                        return Some(Err(CoreError::Csv {
                            line: start_line,
                            message: "unterminated quoted field".into(),
                        }));
                    }
                    self.rest = "";
                    fields.push(std::mem::take(&mut cur));
                    return Some(Ok((start_line, fields)));
                }
                Some((pos, ch)) => {
                    if in_quotes {
                        if ch == '"' {
                            // Peek: doubled quote = literal quote.
                            if self.rest[pos + 1..].starts_with('"') {
                                cur.push('"');
                                chars.next();
                            } else {
                                in_quotes = false;
                                after_quote = true;
                            }
                        } else {
                            if ch == '\n' {
                                self.line += 1;
                            }
                            cur.push(ch);
                        }
                        continue;
                    }
                    match ch {
                        '"' if cur.is_empty() && !after_quote => in_quotes = true,
                        '"' => {
                            return Some(Err(CoreError::Csv {
                                line: start_line,
                                message: "stray quote inside unquoted field".into(),
                            }))
                        }
                        ',' => {
                            fields.push(std::mem::take(&mut cur));
                            after_quote = false;
                        }
                        '\r' => {} // tolerate CRLF
                        '\n' => {
                            self.rest = &self.rest[pos + 1..];
                            fields.push(std::mem::take(&mut cur));
                            return Some(Ok((start_line, fields)));
                        }
                        _ if after_quote => {
                            return Some(Err(CoreError::Csv {
                                line: start_line,
                                message: "data after closing quote".into(),
                            }))
                        }
                        _ => cur.push(ch),
                    }
                }
            }
        }
    }
}

fn write_record(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_field(f, out);
    }
    out.push('\n');
}

fn answer_to_field(a: &Answer) -> String {
    match a {
        Answer::Choice(i) => format!("C:{i}"),
        Answer::Text(t) => format!("T:{t}"),
        Answer::Skipped => "S".to_owned(),
    }
}

fn answer_from_field(s: &str, line: usize) -> Result<Answer> {
    if s == "S" {
        return Ok(Answer::Skipped);
    }
    if let Some(rest) = s.strip_prefix("C:") {
        return rest
            .parse()
            .map(Answer::Choice)
            .map_err(|_| CoreError::Csv { line, message: format!("bad choice `{rest}`") });
    }
    if let Some(rest) = s.strip_prefix("T:") {
        return Ok(Answer::Text(rest.to_owned()));
    }
    Err(CoreError::Csv { line, message: format!("bad answer `{s}`") })
}

fn kind_to_str(k: SourceKind) -> &'static str {
    k.name()
}

fn kind_from_str(s: &str, line: usize) -> Result<SourceKind> {
    SourceKind::ALL
        .into_iter()
        .find(|k| k.name() == s)
        .ok_or_else(|| CoreError::Csv { line, message: format!("bad source kind `{s}`") })
}

/// Serializes the `sources` table.
pub fn sources_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("name,kind\n");
    for s in &ds.sources {
        write_record(&mut out, &[&s.name, kind_to_str(s.kind)]);
    }
    out
}

/// Serializes the `countries` table.
pub fn countries_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("name\n");
    for c in &ds.countries {
        write_record(&mut out, &[&c.name]);
    }
    out
}

/// Serializes the `workers` table.
pub fn workers_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("source,country\n");
    for w in &ds.workers {
        write_record(&mut out, &[&w.source.raw().to_string(), &w.country.raw().to_string()]);
    }
    out
}

/// Serializes the `task_types` table.
pub fn task_types_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("title,goals,operators,data_types,choice_arity\n");
    for t in &ds.task_types {
        write_record(
            &mut out,
            &[
                &t.title,
                &t.goals.bits().to_string(),
                &t.operators.bits().to_string(),
                &t.data_types.bits().to_string(),
                &t.choice_arity.to_string(),
            ],
        );
    }
    out
}

/// Serializes the `batches` table.
pub fn batches_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("task_type,created_at,sampled,html\n");
    for b in &ds.batches {
        write_record(
            &mut out,
            &[
                &b.task_type.raw().to_string(),
                &b.created_at.as_secs().to_string(),
                if b.sampled { "1" } else { "0" },
                b.html.as_deref().unwrap_or(""),
            ],
        );
    }
    out
}

/// Serializes the `instances` table.
pub fn instances_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("batch,item,worker,start,end,trust,answer\n");
    // Preallocate roughly: ~40 bytes per row.
    out.reserve(ds.instances.len() * 40);
    let mut trust_buf = String::new();
    for i in &ds.instances {
        trust_buf.clear();
        let _ = write!(trust_buf, "{}", i.trust);
        write_record(
            &mut out,
            &[
                &i.batch.raw().to_string(),
                &i.item.raw().to_string(),
                &i.worker.raw().to_string(),
                &i.start.as_secs().to_string(),
                &i.end.as_secs().to_string(),
                &trust_buf,
                &answer_to_field(i.answer),
            ],
        );
    }
    out
}

/// Writes the six tables as `<name>.csv` files under `dir`.
pub fn export_dir(ds: &Dataset, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("sources.csv"), sources_to_csv(ds))?;
    fs::write(dir.join("countries.csv"), countries_to_csv(ds))?;
    fs::write(dir.join("workers.csv"), workers_to_csv(ds))?;
    fs::write(dir.join("task_types.csv"), task_types_to_csv(ds))?;
    fs::write(dir.join("batches.csv"), batches_to_csv(ds))?;
    fs::write(dir.join("instances.csv"), instances_to_csv(ds))?;
    Ok(())
}

struct TableReader<'a> {
    records: CsvRecords<'a>,
    expected_fields: usize,
}

impl<'a> TableReader<'a> {
    fn new(text: &'a str, header: &str) -> Result<Self> {
        let expected_fields = header.split(',').count();
        let mut records = parse_records(text);
        match records.next() {
            Some(Ok((_, fields))) if fields.join(",") == header => {}
            Some(Ok((line, _))) => {
                return Err(CoreError::Csv { line, message: format!("expected header `{header}`") })
            }
            Some(Err(e)) => return Err(e),
            None => return Err(CoreError::Csv { line: 1, message: "empty file".into() }),
        }
        Ok(TableReader { records, expected_fields })
    }
}

impl Iterator for TableReader<'_> {
    type Item = Result<(usize, Vec<String>)>;
    fn next(&mut self) -> Option<Self::Item> {
        let rec = self.records.next()?;
        Some(rec.and_then(|(line, fields)| {
            if fields.len() == 1 && fields[0].is_empty() {
                // Trailing blank line.
                return Err(CoreError::Csv { line, message: "blank record".into() });
            }
            if fields.len() != self.expected_fields {
                return Err(CoreError::Csv {
                    line,
                    message: format!(
                        "expected {} fields, got {}",
                        self.expected_fields,
                        fields.len()
                    ),
                });
            }
            Ok((line, fields))
        }))
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T> {
    s.parse().map_err(|_| CoreError::Csv { line, message: format!("bad {what} `{s}`") })
}

/// Reads the six `<name>.csv` tables from `dir` and validates the result.
pub fn import_dir(dir: &Path) -> Result<Dataset> {
    let read = |name: &str| -> Result<String> {
        fs::read_to_string(dir.join(name))
            .map_err(|e| CoreError::Csv { line: 0, message: format!("{name}: {e}") })
    };
    let mut b = DatasetBuilder::new();

    for rec in TableReader::new(&read("sources.csv")?, "name,kind")? {
        let (line, f) = rec?;
        b.add_source(Source::new(&f[0], kind_from_str(&f[1], line)?));
    }
    for rec in TableReader::new(&read("countries.csv")?, "name")? {
        let (_, f) = rec?;
        b.add_country(&f[0]);
    }
    for rec in TableReader::new(&read("workers.csv")?, "source,country")? {
        let (line, f) = rec?;
        b.add_worker(Worker::new(
            SourceId::new(parse_num(&f[0], line, "source id")?),
            CountryId::new(parse_num(&f[1], line, "country id")?),
        ));
    }
    for rec in
        TableReader::new(&read("task_types.csv")?, "title,goals,operators,data_types,choice_arity")?
    {
        let (line, f) = rec?;
        let mut tt = TaskType::new(&f[0]);
        tt.goals = LabelSet::from_bits(parse_num(&f[1], line, "goal bits")?)?;
        tt.operators = LabelSet::from_bits(parse_num(&f[2], line, "operator bits")?)?;
        tt.data_types = LabelSet::from_bits(parse_num(&f[3], line, "data-type bits")?)?;
        tt.choice_arity = parse_num(&f[4], line, "choice arity")?;
        b.add_task_type(tt);
    }
    for rec in TableReader::new(&read("batches.csv")?, "task_type,created_at,sampled,html")? {
        let (line, f) = rec?;
        let mut batch = Batch::new(
            TaskTypeId::new(parse_num(&f[0], line, "task type id")?),
            Timestamp::from_secs(parse_num(&f[1], line, "created_at")?),
        );
        batch.sampled = &f[2] == "1";
        if !f[3].is_empty() {
            batch.html = Some(f[3].as_str().into());
        }
        b.add_batch(batch);
    }
    for rec in
        TableReader::new(&read("instances.csv")?, "batch,item,worker,start,end,trust,answer")?
    {
        let (line, f) = rec?;
        b.add_instance(TaskInstance {
            batch: BatchId::new(parse_num(&f[0], line, "batch id")?),
            item: ItemId::new(parse_num(&f[1], line, "item id")?),
            worker: WorkerId::new(parse_num(&f[2], line, "worker id")?),
            start: Timestamp::from_secs(parse_num(&f[3], line, "start")?),
            end: Timestamp::from_secs(parse_num(&f[4], line, "end")?),
            trust: parse_num(&f[5], line, "trust")?,
            answer: answer_from_field(&f[6], line)?,
        });
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{DataType, Goal, Operator};
    use crate::time::Duration;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("clix,sense \"quoted\"", SourceKind::Dedicated));
        let c = b.add_country("USA");
        let w = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(
            TaskType::new("find \"urls\", quickly\nplease")
                .with_goal(Goal::LanguageUnderstanding)
                .with_operator(Operator::Gather)
                .with_data_type(DataType::Webpage),
        );
        let t0 = Timestamp::from_ymd(2015, 6, 1);
        let batch =
            b.add_batch(Batch::new(tt, t0).with_html("<div class=\"a,b\">\n<p>hi</p></div>"));
        b.add_batch(Batch::new(tt, t0 + Duration::from_days(1)).unsampled());
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(0),
            worker: w,
            start: t0 + Duration::from_secs(100),
            end: t0 + Duration::from_secs(160),
            trust: 0.875,
            answer: Answer::Text("http://example.com, \"the\" site".into()),
        });
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(0),
            worker: w,
            start: t0 + Duration::from_secs(400),
            end: t0 + Duration::from_secs(460),
            trust: 0.5,
            answer: Answer::Skipped,
        });
        b.finish().unwrap()
    }

    #[test]
    fn escape_roundtrip_simple() {
        let mut out = String::new();
        escape_field("plain", &mut out);
        assert_eq!(out, "plain");
    }

    #[test]
    fn escape_roundtrip_tricky() {
        let mut out = String::new();
        escape_field("a,\"b\"\nc", &mut out);
        assert_eq!(out, "\"a,\"\"b\"\"\nc\"");
        let parsed: Vec<_> = parse_records(&out).map(|r| r.unwrap().1).collect();
        assert_eq!(parsed, vec![vec!["a,\"b\"\nc".to_string()]]);
    }

    #[test]
    fn parse_multiline_record_counts_lines() {
        let doc = "a,\"x\ny\"\nb,c\n";
        let recs: Vec<_> = parse_records(doc).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, vec!["a", "x\ny"]);
        assert_eq!(recs[1].1, vec!["b", "c"]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        let doc = "a,\"open\n";
        let err = parse_records(doc).next().unwrap().unwrap_err();
        assert!(matches!(err, CoreError::Csv { .. }));
    }

    #[test]
    fn parse_rejects_stray_quote() {
        let doc = "ab\"c,d\n";
        assert!(parse_records(doc).next().unwrap().is_err());
    }

    #[test]
    fn full_roundtrip_via_dir() {
        let ds = sample();
        let dir = std::env::temp_dir().join(format!("crowd_csv_test_{}", std::process::id()));
        export_dir(&ds, &dir).unwrap();
        let back = import_dir(&dir).unwrap();
        assert_eq!(back.sources, ds.sources);
        assert_eq!(back.countries, ds.countries);
        assert_eq!(back.workers, ds.workers);
        assert_eq!(back.task_types, ds.task_types);
        assert_eq!(back.batches, ds.batches);
        assert_eq!(back.instances, ds.instances);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn answer_field_roundtrip() {
        for a in [Answer::Choice(7), Answer::Text("x,y".into()), Answer::Skipped] {
            let f = answer_to_field(&a);
            assert_eq!(answer_from_field(&f, 1).unwrap(), a);
        }
        assert!(answer_from_field("Q:9", 1).is_err());
        assert!(answer_from_field("C:notanum", 1).is_err());
    }

    #[test]
    fn import_rejects_wrong_header() {
        let dir = std::env::temp_dir().join(format!("crowd_csv_badhdr_{}", std::process::id()));
        export_dir(&sample(), &dir).unwrap();
        std::fs::write(dir.join("workers.csv"), "wrong,header\n1,2\n").unwrap();
        assert!(import_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_rejects_wrong_arity() {
        let dir = std::env::temp_dir().join(format!("crowd_csv_badarity_{}", std::process::id()));
        export_dir(&sample(), &dir).unwrap();
        std::fs::write(dir.join("workers.csv"), "source,country\n1\n").unwrap();
        assert!(import_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
