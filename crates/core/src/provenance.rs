//! Ingest provenance: the coverage metadata a resilient load attaches to
//! the data it produced.
//!
//! The paper's raw logs (27M instances over 2012–2016) needed cleaning
//! before analysis; a loader that silently drops bad rows would let every
//! downstream figure compute over partial data without anyone knowing.
//! [`IngestReport`] is the antidote: per-table counts of what was
//! accepted, repaired, deduplicated, and quarantined, plus retry and
//! budget state, threaded through to the `Study` so analytics carry their
//! own coverage statement.
//!
//! The types live in `crowd-core` (not in the `crowd-ingest` loader crate)
//! so `crowd-analytics` can hold a report without depending on the loader.

use std::fmt;

use crate::error::FaultClass;

/// Per-table cap on quarantined rows before ingest aborts with
/// [`crate::error::CoreError::BudgetExceeded`].
///
/// A budget of zero means strict mode: the first quarantined record fails
/// the load. The default (100) tolerates scattered damage while refusing
/// to synthesize a study out of a mostly-destroyed table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorBudget {
    /// Maximum quarantined rows per table.
    pub max_quarantined_per_table: u64,
}

impl Default for ErrorBudget {
    fn default() -> ErrorBudget {
        ErrorBudget { max_quarantined_per_table: 100 }
    }
}

impl ErrorBudget {
    /// Strict mode: any quarantined record fails the load.
    pub const fn strict() -> ErrorBudget {
        ErrorBudget { max_quarantined_per_table: 0 }
    }

    /// A budget of `n` quarantined rows per table.
    pub const fn per_table(n: u64) -> ErrorBudget {
        ErrorBudget { max_quarantined_per_table: n }
    }
}

/// One quarantined record: where it came from and why it was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// Table name (`"sources"`, …, `"instances"`).
    pub table: &'static str,
    /// 1-based line number of the record in its file.
    pub line: usize,
    /// Fault classification.
    pub fault: FaultClass,
    /// Human-readable detail (parse message, offending value).
    pub message: String,
}

impl fmt::Display for QuarantinedRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} [{}] {}", self.table, self.line, self.fault, self.message)
    }
}

/// Ingest outcome for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Table name.
    pub table: &'static str,
    /// Rows accepted into the dataset.
    pub accepted: u64,
    /// Out-of-order arrivals restored to canonical order (instances only;
    /// counted as arrival-order inversions the canonical sort repaired).
    pub repaired: u64,
    /// Byte-identical replayed rows dropped by deduplication.
    pub deduped: u64,
    /// Rows rejected and quarantined.
    pub quarantined: u64,
    /// Transient-IO retries spent reading the table's stream.
    pub retries: u32,
    /// Manifest verification: `None` when no manifest covered the table,
    /// otherwise whether row count and content digest both matched.
    pub verified: Option<bool>,
}

impl TableReport {
    /// An empty report for `table`.
    pub fn new(table: &'static str) -> TableReport {
        TableReport {
            table,
            accepted: 0,
            repaired: 0,
            deduped: 0,
            quarantined: 0,
            retries: 0,
            verified: None,
        }
    }

    /// Rows observed in the stream (accepted + deduped + quarantined).
    pub fn observed(&self) -> u64 {
        self.accepted + self.deduped + self.quarantined
    }
}

/// Cap on stored [`QuarantinedRow`] detail entries per table; counts in
/// [`TableReport`] stay exact past the cap.
pub const QUARANTINE_DETAIL_CAP: usize = 32;

/// The full coverage statement of one resilient load.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Per-table outcomes, in load order (sources → … → instances).
    pub tables: Vec<TableReport>,
    /// Detail for quarantined rows, capped at [`QUARANTINE_DETAIL_CAP`]
    /// per table (the per-table counts remain exact).
    pub quarantine: Vec<QuarantinedRow>,
    /// The budget the load ran under.
    pub budget: ErrorBudget,
    /// Whether an export manifest was found and used for verification.
    pub manifest_present: bool,
}

impl IngestReport {
    /// An empty report under `budget`.
    pub fn new(budget: ErrorBudget) -> IngestReport {
        IngestReport { tables: Vec::new(), quarantine: Vec::new(), budget, manifest_present: false }
    }

    /// The report for `table`, if that table was processed.
    pub fn table(&self, table: &str) -> Option<&TableReport> {
        self.tables.iter().find(|t| t.table == table)
    }

    /// Total rows accepted across tables.
    pub fn total_accepted(&self) -> u64 {
        self.tables.iter().map(|t| t.accepted).sum()
    }

    /// Total rows quarantined across tables.
    pub fn total_quarantined(&self) -> u64 {
        self.tables.iter().map(|t| t.quarantined).sum()
    }

    /// Total replayed rows dropped across tables.
    pub fn total_deduped(&self) -> u64 {
        self.tables.iter().map(|t| t.deduped).sum()
    }

    /// Total transient-IO retries across tables.
    pub fn total_retries(&self) -> u32 {
        self.tables.iter().map(|t| t.retries).sum()
    }

    /// True when nothing was deduplicated, quarantined, or retried: every
    /// observed row was kept and the stream never faulted. (`repaired` is
    /// excluded: restoring canonical instance order is a normalization
    /// that also fires on legitimate unsorted input, not damage.)
    pub fn is_clean(&self) -> bool {
        self.tables.iter().all(|t| t.deduped == 0 && t.quarantined == 0 && t.retries == 0)
    }

    /// Fraction of observed rows that were accepted, in `[0, 1]`; `1.0`
    /// for an empty load. Deduplicated replays count as covered (the
    /// canonical row was kept).
    pub fn coverage(&self) -> f64 {
        let observed: u64 = self.tables.iter().map(|t| t.observed()).sum();
        if observed == 0 {
            return 1.0;
        }
        let kept: u64 = self.tables.iter().map(|t| t.accepted + t.deduped).sum();
        kept as f64 / observed as f64
    }

    /// One-line human summary (CLI banners).
    pub fn summary(&self) -> String {
        format!(
            "accepted {} rows ({} repaired, {} deduped, {} quarantined, {} retries, coverage {:.4})",
            self.total_accepted(),
            self.tables.iter().map(|t| t.repaired).sum::<u64>(),
            self.total_deduped(),
            self.total_quarantined(),
            self.total_retries(),
            self.coverage(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_dedup_as_covered() {
        let mut r = IngestReport::new(ErrorBudget::default());
        let mut t = TableReport::new("instances");
        t.accepted = 90;
        t.deduped = 5;
        t.quarantined = 5;
        r.tables.push(t);
        assert!((r.coverage() - 0.95).abs() < 1e-12);
        assert_eq!(r.total_accepted(), 90);
        assert!(!r.is_clean());
    }

    #[test]
    fn empty_report_is_clean_with_full_coverage() {
        let r = IngestReport::new(ErrorBudget::strict());
        assert!(r.is_clean());
        assert_eq!(r.coverage(), 1.0);
        assert!(r.table("instances").is_none());
    }

    #[test]
    fn summary_mentions_the_counts() {
        let mut r = IngestReport::new(ErrorBudget::default());
        let mut t = TableReport::new("workers");
        t.accepted = 7;
        t.quarantined = 2;
        t.retries = 3;
        r.tables.push(t);
        let s = r.summary();
        assert!(s.contains("7 rows"), "{s}");
        assert!(s.contains("2 quarantined"), "{s}");
        assert!(s.contains("3 retries"), "{s}");
    }

    #[test]
    fn quarantined_row_renders_location_and_class() {
        let q = QuarantinedRow {
            table: "instances",
            line: 42,
            fault: FaultClass::Numeric,
            message: "bad trust `x`".into(),
        };
        let s = q.to_string();
        assert!(s.contains("instances:42"));
        assert!(s.contains("numeric"));
    }
}
