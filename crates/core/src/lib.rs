//! # crowd-core
//!
//! Core data model for the crowdsourcing-marketplace study reproduction
//! (Jain, Das Sarma, Parameswaran, Widom — VLDB 2017).
//!
//! This crate defines the *observable* schema of the marketplace dataset the
//! paper analyzes: labor [`Source`]s, [`Worker`]s, distinct [`TaskType`]s,
//! [`Batch`]es of task instances, and the per-instance rows carrying worker
//! answers, start/end times and marketplace-assigned trust scores
//! (paper §2.3, "Dataset Attributes").
//!
//! Everything *latent* (true worker skill, task difficulty, arrival-process
//! parameters) lives in `crowd-sim`; analyses in `crowd-analytics` consume
//! only the types defined here, mirroring the authors' position of seeing
//! rows but not the mechanisms that produced them.
//!
//! ## Quick tour
//!
//! ```
//! use crowd_core::prelude::*;
//!
//! let mut b = DatasetBuilder::new();
//! let src = b.add_source(Source::new("clixsense", SourceKind::OnDemand));
//! let us = b.add_country("USA");
//! let w = b.add_worker(Worker::new(src, us));
//! let tt = b.add_task_type(TaskType::new("flag images")
//!     .with_goal(Goal::QualityAssurance)
//!     .with_operator(Operator::Filter)
//!     .with_data_type(DataType::Image));
//! let t0 = Timestamp::from_ymd_hms(2015, 3, 2, 9, 0, 0);
//! let batch = b.add_batch(Batch::new(tt, t0).with_html("<p>flag it</p>"));
//! b.add_instance(TaskInstance {
//!     batch,
//!     item: ItemId::new(0),
//!     worker: w,
//!     start: t0 + Duration::from_secs(120),
//!     end: t0 + Duration::from_secs(180),
//!     trust: 0.97,
//!     answer: Answer::Choice(1),
//! });
//! let ds = b.finish().expect("consistent dataset");
//! assert_eq!(ds.instances.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod fixture;
pub mod id;
pub mod labels;
pub mod provenance;
pub mod query;
pub mod rng;
pub mod shard;
pub mod task;
pub mod time;
pub mod worker;

pub use answer::Answer;
pub use dataset::{
    Dataset, DatasetBuilder, DatasetIndex, DatasetSummary, HtmlArena, InstanceColumns, InstanceRef,
    TaskInstance,
};
pub use error::{CoreError, FaultClass, Result};
pub use id::{BatchId, CountryId, InstanceId, ItemId, SourceId, TaskTypeId, WorkerId};
pub use labels::{Complexity, DataType, Goal, LabelSet, Operator};
pub use provenance::{ErrorBudget, IngestReport, QuarantinedRow, TableReport};
pub use query::{Accumulator, ScanPass, StreamFold};
pub use rng::stream_seed;
pub use shard::{ShardPlan, ShardSink, ShardedColumns};
pub use task::{Batch, DesignFeatures, TaskType};
pub use time::{Duration, Timestamp, WeekIndex, Weekday};
pub use worker::{Country, Source, SourceKind, Worker};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::answer::Answer;
    pub use crate::dataset::{
        Dataset, DatasetBuilder, DatasetIndex, DatasetSummary, HtmlArena, InstanceColumns,
        InstanceRef, TaskInstance,
    };
    pub use crate::error::{CoreError, FaultClass, Result};
    pub use crate::id::{BatchId, CountryId, InstanceId, ItemId, SourceId, TaskTypeId, WorkerId};
    pub use crate::labels::{Complexity, DataType, Goal, LabelSet, Operator};
    pub use crate::provenance::{ErrorBudget, IngestReport, QuarantinedRow, TableReport};
    pub use crate::query::{Accumulator, ScanPass, StreamFold};
    pub use crate::rng::stream_seed;
    pub use crate::shard::{ShardPlan, ShardSink, ShardedColumns};
    pub use crate::task::{Batch, DesignFeatures, TaskType};
    pub use crate::time::{Duration, Timestamp, WeekIndex, Weekday};
    pub use crate::worker::{Country, Source, SourceKind, Worker};
}
