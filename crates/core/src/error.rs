//! Error type shared by the core data model.

use std::fmt;

/// Result alias used throughout `crowd-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced while constructing or (de)serializing datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A row referenced an entity id that does not exist in the dataset.
    DanglingReference {
        /// Which table the bad reference points into (e.g. `"workers"`).
        table: &'static str,
        /// The out-of-range index.
        index: usize,
        /// Number of rows actually present in that table.
        len: usize,
    },
    /// A task instance ended before it started.
    NegativeDuration {
        /// Index of the offending instance row.
        instance: usize,
    },
    /// A trust score fell outside `[0, 1]`.
    TrustOutOfRange {
        /// Index of the offending instance row.
        instance: usize,
        /// The offending value.
        value: f32,
    },
    /// A batch was marked sampled but carries no task HTML.
    SampledBatchWithoutHtml {
        /// Index of the offending batch row.
        batch: usize,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Columnar bulk-load received columns of differing lengths.
    ColumnLengthMismatch {
        /// Length of the first (batch-id) column.
        expected: usize,
        /// The first differing column length encountered.
        got: usize,
    },
    /// A timestamp string or component was invalid.
    InvalidTime(String),
    /// A label abbreviation could not be parsed.
    UnknownLabel(String),
    /// Quarantined records exceeded the ingest error budget for a table.
    BudgetExceeded {
        /// The table whose budget ran out.
        table: &'static str,
        /// Records quarantined when the budget tripped.
        quarantined: u64,
        /// The configured per-table budget.
        budget: u64,
    },
    /// Transient IO errors persisted past the bounded retry limit.
    IoExhausted {
        /// The table whose stream kept failing.
        table: &'static str,
        /// Read attempts made (initial try plus retries).
        attempts: u32,
        /// The last IO error observed, rendered.
        message: String,
    },
    /// A table's content disagreed with the export manifest: rows are
    /// missing, extra, or silently altered relative to what the exporter
    /// recorded.
    ManifestMismatch {
        /// The disagreeing table.
        table: &'static str,
        /// Row count the manifest promised.
        expected_rows: u64,
        /// Rows actually accepted.
        got_rows: u64,
        /// Whether the content digest matched despite any count skew.
        digest_ok: bool,
    },
}

/// Classification of a single quarantined record — the fault taxonomy the
/// resilient ingest path (`crowd-ingest`) tags rejected rows with.
///
/// The classes mirror what real marketplace logs exhibit (duplicate
/// submissions, partial uploads, corrupted bytes): each quarantined row
/// carries exactly one class, so reports can aggregate by failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The raw bytes did not parse as a CSV record (stray or unterminated
    /// quote, blank record, invalid encoding).
    Malformed,
    /// The record had the wrong number of fields for its table.
    Arity,
    /// A numeric or enumerated field failed to parse.
    Numeric,
    /// The record referenced an entity id outside its target table.
    Dangling,
    /// The record duplicated an already-accepted row byte-for-byte.
    Duplicate,
    /// A field parsed but carried a semantically invalid value (negative
    /// duration, trust outside `[0, 1]`, sampled batch without HTML).
    Semantic,
}

impl FaultClass {
    /// Every class, in report order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Malformed,
        FaultClass::Arity,
        FaultClass::Numeric,
        FaultClass::Dangling,
        FaultClass::Duplicate,
        FaultClass::Semantic,
    ];

    /// Stable lower-case name (report and log rendering).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Malformed => "malformed",
            FaultClass::Arity => "arity",
            FaultClass::Numeric => "numeric",
            FaultClass::Dangling => "dangling",
            FaultClass::Duplicate => "duplicate",
            FaultClass::Semantic => "semantic",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DanglingReference { table, index, len } => {
                write!(f, "dangling reference into `{table}`: index {index} >= len {len}")
            }
            CoreError::NegativeDuration { instance } => {
                write!(f, "instance {instance} ends before it starts")
            }
            CoreError::TrustOutOfRange { instance, value } => {
                write!(f, "instance {instance} has trust {value} outside [0, 1]")
            }
            CoreError::SampledBatchWithoutHtml { batch } => {
                write!(f, "batch {batch} is in the sample but has no task HTML")
            }
            CoreError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            CoreError::ColumnLengthMismatch { expected, got } => {
                write!(f, "instance columns disagree in length: {expected} vs {got}")
            }
            CoreError::InvalidTime(s) => write!(f, "invalid time: {s}"),
            CoreError::UnknownLabel(s) => write!(f, "unknown label: {s}"),
            CoreError::BudgetExceeded { table, quarantined, budget } => {
                write!(
                    f,
                    "`{table}` quarantined {quarantined} records, over the error budget of {budget}"
                )
            }
            CoreError::IoExhausted { table, attempts, message } => {
                write!(f, "`{table}` still failing after {attempts} read attempts: {message}")
            }
            CoreError::ManifestMismatch { table, expected_rows, got_rows, digest_ok } => {
                write!(
                    f,
                    "`{table}` disagrees with the export manifest: {expected_rows} rows expected, \
                     {got_rows} accepted, digest {}",
                    if *digest_ok { "ok" } else { "MISMATCH" }
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::DanglingReference { table: "workers", index: 9, len: 3 };
        let s = e.to_string();
        assert!(s.contains("workers"));
        assert!(s.contains('9'));
        assert!(s.contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CoreError::NegativeDuration { instance: 1 },
            CoreError::NegativeDuration { instance: 1 }
        );
        assert_ne!(
            CoreError::NegativeDuration { instance: 1 },
            CoreError::NegativeDuration { instance: 2 }
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::InvalidTime("x".into()));
        assert!(e.to_string().contains("invalid time"));
    }

    #[test]
    fn ingest_errors_render_their_evidence() {
        let e = CoreError::BudgetExceeded { table: "instances", quarantined: 101, budget: 100 };
        assert!(e.to_string().contains("101"));
        assert!(e.to_string().contains("100"));
        let e =
            CoreError::IoExhausted { table: "workers", attempts: 9, message: "timed out".into() };
        assert!(e.to_string().contains("9 read attempts"));
        let e = CoreError::ManifestMismatch {
            table: "batches",
            expected_rows: 10,
            got_rows: 8,
            digest_ok: false,
        };
        assert!(e.to_string().contains("MISMATCH"));
    }

    #[test]
    fn fault_classes_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            FaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), FaultClass::ALL.len());
        assert_eq!(FaultClass::Duplicate.to_string(), "duplicate");
    }
}
