//! Error type shared by the core data model.

use std::fmt;

/// Result alias used throughout `crowd-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced while constructing or (de)serializing datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A row referenced an entity id that does not exist in the dataset.
    DanglingReference {
        /// Which table the bad reference points into (e.g. `"workers"`).
        table: &'static str,
        /// The out-of-range index.
        index: usize,
        /// Number of rows actually present in that table.
        len: usize,
    },
    /// A task instance ended before it started.
    NegativeDuration {
        /// Index of the offending instance row.
        instance: usize,
    },
    /// A trust score fell outside `[0, 1]`.
    TrustOutOfRange {
        /// Index of the offending instance row.
        instance: usize,
        /// The offending value.
        value: f32,
    },
    /// A batch was marked sampled but carries no task HTML.
    SampledBatchWithoutHtml {
        /// Index of the offending batch row.
        batch: usize,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Columnar bulk-load received columns of differing lengths.
    ColumnLengthMismatch {
        /// Length of the first (batch-id) column.
        expected: usize,
        /// The first differing column length encountered.
        got: usize,
    },
    /// A timestamp string or component was invalid.
    InvalidTime(String),
    /// A label abbreviation could not be parsed.
    UnknownLabel(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DanglingReference { table, index, len } => {
                write!(f, "dangling reference into `{table}`: index {index} >= len {len}")
            }
            CoreError::NegativeDuration { instance } => {
                write!(f, "instance {instance} ends before it starts")
            }
            CoreError::TrustOutOfRange { instance, value } => {
                write!(f, "instance {instance} has trust {value} outside [0, 1]")
            }
            CoreError::SampledBatchWithoutHtml { batch } => {
                write!(f, "batch {batch} is in the sample but has no task HTML")
            }
            CoreError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            CoreError::ColumnLengthMismatch { expected, got } => {
                write!(f, "instance columns disagree in length: {expected} vs {got}")
            }
            CoreError::InvalidTime(s) => write!(f, "invalid time: {s}"),
            CoreError::UnknownLabel(s) => write!(f, "unknown label: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::DanglingReference { table: "workers", index: 9, len: 3 };
        let s = e.to_string();
        assert!(s.contains("workers"));
        assert!(s.contains('9'));
        assert!(s.contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CoreError::NegativeDuration { instance: 1 },
            CoreError::NegativeDuration { instance: 1 }
        );
        assert_ne!(
            CoreError::NegativeDuration { instance: 1 },
            CoreError::NegativeDuration { instance: 2 }
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::InvalidTime("x".into()));
        assert!(e.to_string().contains("invalid time"));
    }
}
