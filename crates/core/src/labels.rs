//! Task labels: goals, operators, and data types (paper §2.4, §3.4).
//!
//! The authors manually annotated ~3,200 task clusters under three
//! categories; tasks may carry **one or more** labels per category, hence
//! [`LabelSet`] is a small bitmask set rather than a single value.
//! §3.5 additionally splits each category into *simple* vs *complex*
//! ([`Complexity`]), which we encode on the enums themselves.

use crate::error::{CoreError, Result};
use std::fmt;
use std::marker::PhantomData;

/// Simple/complex split used by the §3.5 trend analysis (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Complexity {
    /// "Simple" class: {ER, SA, QA} goals, {filter, rate} operators, text data.
    Simple,
    /// Everything else.
    Complex,
}

/// Common behaviour of the three label enums, enabling generic [`LabelSet`]s
/// and generic per-label breakdowns in the analytics crate.
pub trait Label: Copy + Eq + std::hash::Hash + fmt::Debug + 'static {
    /// Number of variants.
    const COUNT: usize;
    /// Human-readable category name ("goal", "operator", "data type").
    const CATEGORY: &'static str;

    /// Dense index in `0..Self::COUNT`.
    fn index(self) -> usize;
    /// Inverse of [`Label::index`].
    fn from_index(i: usize) -> Option<Self>;
    /// The paper's abbreviation (e.g. `ER`, `Filt`, `Social`).
    fn abbrev(self) -> &'static str;
    /// Full display name.
    fn name(self) -> &'static str;
    /// Simple/complex class per §3.5.
    fn complexity(self) -> Complexity;

    /// Iterator over every variant in index order.
    fn all() -> LabelIter<Self> {
        LabelIter { next: 0, _marker: PhantomData }
    }

    /// Parses either the abbreviation or the full name (case-insensitive).
    fn parse(s: &str) -> Result<Self> {
        (0..Self::COUNT)
            .filter_map(Self::from_index)
            .find(|v| v.abbrev().eq_ignore_ascii_case(s) || v.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| CoreError::UnknownLabel(format!("{} `{s}`", Self::CATEGORY)))
    }
}

/// Iterator over all variants of a label enum.
pub struct LabelIter<L: Label> {
    next: usize,
    _marker: PhantomData<L>,
}

impl<L: Label> Iterator for LabelIter<L> {
    type Item = L;
    fn next(&mut self) -> Option<L> {
        let v = L::from_index(self.next)?;
        self.next += 1;
        Some(v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = L::COUNT.saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl<L: Label> ExactSizeIterator for LabelIter<L> {}

macro_rules! define_label {
    (
        $(#[$doc:meta])* $name:ident, $category:literal, [
            $( $(#[$vdoc:meta])* $variant:ident => ($abbrev:literal, $full:literal, $cx:ident) ),+ $(,)?
        ]
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub enum $name {
            $( $(#[$vdoc])* $variant, )+
        }

        impl Label for $name {
            const COUNT: usize = [$(Self::$variant),+].len();
            const CATEGORY: &'static str = $category;

            #[inline]
            fn index(self) -> usize {
                self as usize
            }

            fn from_index(i: usize) -> Option<Self> {
                const ALL: &[$name] = &[$($name::$variant),+];
                ALL.get(i).copied()
            }

            fn abbrev(self) -> &'static str {
                match self {
                    $( $name::$variant => $abbrev, )+
                }
            }

            fn name(self) -> &'static str {
                match self {
                    $( $name::$variant => $full, )+
                }
            }

            fn complexity(self) -> Complexity {
                match self {
                    $( $name::$variant => Complexity::$cx, )+
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.abbrev())
            }
        }
    };
}

define_label!(
    /// End goal of a task (paper §3.4 "Task Goal": 7 goals; Fig. 9a).
    Goal, "goal", [
        /// Identifying whether two records refer to the same real-world entity.
        EntityResolution => ("ER", "Entity Resolution", Simple),
        /// Psychology studies, surveys, demographics, political leanings.
        HumanBehavior => ("HB", "Human Behavior", Complex),
        /// Judging relevance of search results.
        SearchRelevance => ("SR", "Search Relevance", Complex),
        /// Spam identification, content moderation, data cleaning.
        QualityAssurance => ("QA", "Quality Assurance", Simple),
        /// Classifying the sentiment of content.
        SentimentAnalysis => ("SA", "Sentiment Analysis", Simple),
        /// Parsing, NLP, extracting grammatical elements.
        LanguageUnderstanding => ("LU", "Language Understanding", Complex),
        /// Captions for audio/video, structured info from images.
        Transcription => ("T", "Transcription", Complex),
    ]
);

define_label!(
    /// Human operator / data-processing building block (paper §3.4: 10
    /// operators; Fig. 9c). Filter and Rate are the "simple" pair (§3.5).
    Operator, "operator", [
        /// Separate items into classes / answer boolean questions.
        Filter => ("Filt", "Filter", Simple),
        /// Rate an item on an ordinal scale.
        Rate => ("Rate", "Rate", Simple),
        /// Order items.
        Sort => ("Sort", "Sort", Complex),
        /// Count occurrences.
        Count => ("Count", "Count", Complex),
        /// Label or tag items.
        Tag => ("Tag", "Label/Tag", Complex),
        /// Provide information not present in the data (e.g. web search).
        Gather => ("Gat", "Gather", Complex),
        /// Convert implicit information into another form (e.g. OCR by hand).
        Extract => ("Ext", "Extract", Complex),
        /// Generate new information using worker judgement (captions etc.).
        Generate => ("Gen", "Generate", Complex),
        /// Draw/mark/bound segments of the data (e.g. bounding boxes).
        Localize => ("Loc", "Localize", Complex),
        /// Visit an external page and act there (surveys, games).
        ExternalLink => ("Exter", "External Link", Complex),
    ]
);

define_label!(
    /// Type of data the task interface operates on (paper §3.4: 7 data
    /// types; Fig. 9b). Only Text is "simple" (§3.5).
    DataType, "data type", [
        /// Plain text.
        Text => ("Text", "Text", Simple),
        /// Images.
        Image => ("Image", "Image", Complex),
        /// Audio clips.
        Audio => ("Audio", "Audio", Complex),
        /// Video clips.
        Video => ("Video", "Video", Complex),
        /// Map/geographic data.
        Maps => ("Map", "Maps", Complex),
        /// Social-media posts and profiles.
        SocialMedia => ("Social", "Social Media", Complex),
        /// Webpages.
        Webpage => ("Web", "Webpage", Complex),
    ]
);

/// A small set of labels from one category, stored as a `u16` bitmask.
///
/// Tasks may carry one or more labels per category (paper §3.4), and the
/// largest category has 10 variants, so 16 bits suffice.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LabelSet<L: Label> {
    bits: u16,
    #[cfg_attr(feature = "serde", serde(skip))]
    _marker: PhantomData<L>,
}

impl<L: Label> Default for LabelSet<L> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<L: Label> LabelSet<L> {
    /// The empty set.
    pub const fn empty() -> Self {
        LabelSet { bits: 0, _marker: PhantomData }
    }

    /// A singleton set.
    pub fn only(label: L) -> Self {
        let mut s = Self::empty();
        s.insert(label);
        s
    }

    /// Builds a set from an iterator of labels.
    #[allow(clippy::should_implement_trait)] // FromIterator is also implemented
    pub fn from_iter<I: IntoIterator<Item = L>>(iter: I) -> Self {
        let mut s = Self::empty();
        for l in iter {
            s.insert(l);
        }
        s
    }

    /// Adds a label; returns `true` if it was newly inserted.
    pub fn insert(&mut self, label: L) -> bool {
        let bit = 1u16 << label.index();
        let fresh = self.bits & bit == 0;
        self.bits |= bit;
        fresh
    }

    /// Removes a label; returns `true` if it was present.
    pub fn remove(&mut self, label: L) -> bool {
        let bit = 1u16 << label.index();
        let present = self.bits & bit != 0;
        self.bits &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, label: L) -> bool {
        self.bits & (1u16 << label.index()) != 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// True when no label is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// True if any member is shared with `other`.
    pub fn intersects(&self, other: &Self) -> bool {
        self.bits & other.bits != 0
    }

    /// Iterates members in index order.
    pub fn iter(&self) -> impl Iterator<Item = L> + '_ {
        (0..L::COUNT).filter(|i| self.bits & (1 << i) != 0).filter_map(L::from_index)
    }

    /// The set's §3.5 class: complex if **any** member is complex, simple if
    /// all members are simple. Empty sets have no class.
    pub fn complexity(&self) -> Option<Complexity> {
        if self.is_empty() {
            return None;
        }
        if self.iter().any(|l| l.complexity() == Complexity::Complex) {
            Some(Complexity::Complex)
        } else {
            Some(Complexity::Simple)
        }
    }

    /// Raw bitmask (for compact serialization).
    pub fn bits(&self) -> u16 {
        self.bits
    }

    /// Rebuilds from a raw bitmask, rejecting bits beyond `L::COUNT`.
    pub fn from_bits(bits: u16) -> Result<Self> {
        if bits >> L::COUNT != 0 {
            return Err(CoreError::UnknownLabel(format!(
                "bitmask {bits:#x} has bits beyond the {} {}s",
                L::COUNT,
                L::CATEGORY
            )));
        }
        Ok(LabelSet { bits, _marker: PhantomData })
    }
}

impl<L: Label> fmt::Debug for LabelSet<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|l| l.abbrev())).finish()
    }
}

impl<L: Label> fmt::Display for LabelSet<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for l in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            f.write_str(l.abbrev())?;
            first = false;
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

impl<L: Label> FromIterator<L> for LabelSet<L> {
    fn from_iter<I: IntoIterator<Item = L>>(iter: I) -> Self {
        Self::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        assert_eq!(Goal::COUNT, 7, "paper §3.4: 7 goals");
        assert_eq!(Operator::COUNT, 10, "paper §3.4: 10 operators");
        assert_eq!(DataType::COUNT, 7, "paper §3.4: 7 data types");
    }

    #[test]
    fn complexity_split_matches_section_3_5() {
        let simple_goals: Vec<_> =
            Goal::all().filter(|g| g.complexity() == Complexity::Simple).collect();
        assert_eq!(
            simple_goals,
            vec![Goal::EntityResolution, Goal::QualityAssurance, Goal::SentimentAnalysis]
        );
        let simple_ops: Vec<_> =
            Operator::all().filter(|o| o.complexity() == Complexity::Simple).collect();
        assert_eq!(simple_ops, vec![Operator::Filter, Operator::Rate]);
        let simple_data: Vec<_> =
            DataType::all().filter(|d| d.complexity() == Complexity::Simple).collect();
        assert_eq!(simple_data, vec![DataType::Text]);
    }

    #[test]
    fn abbrevs_match_figures() {
        assert_eq!(Goal::LanguageUnderstanding.abbrev(), "LU");
        assert_eq!(Goal::Transcription.abbrev(), "T");
        assert_eq!(Operator::Gather.abbrev(), "Gat");
        assert_eq!(Operator::ExternalLink.abbrev(), "Exter");
        assert_eq!(DataType::SocialMedia.abbrev(), "Social");
    }

    #[test]
    fn parse_accepts_abbrev_and_name() {
        assert_eq!(Goal::parse("ER").unwrap(), Goal::EntityResolution);
        assert_eq!(Goal::parse("entity resolution").unwrap(), Goal::EntityResolution);
        assert_eq!(Operator::parse("filt").unwrap(), Operator::Filter);
        assert_eq!(DataType::parse("Social Media").unwrap(), DataType::SocialMedia);
        assert!(Goal::parse("nonsense").is_err());
    }

    #[test]
    fn index_roundtrip() {
        for g in Goal::all() {
            assert_eq!(Goal::from_index(g.index()), Some(g));
        }
        for o in Operator::all() {
            assert_eq!(Operator::from_index(o.index()), Some(o));
        }
        for d in DataType::all() {
            assert_eq!(DataType::from_index(d.index()), Some(d));
        }
        assert_eq!(Goal::from_index(Goal::COUNT), None);
    }

    #[test]
    fn label_iter_len() {
        assert_eq!(Goal::all().len(), 7);
        assert_eq!(Goal::all().count(), 7);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = LabelSet::<Operator>::empty();
        assert!(s.is_empty());
        assert!(s.insert(Operator::Filter));
        assert!(!s.insert(Operator::Filter), "double insert reports false");
        assert!(s.insert(Operator::Extract));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Operator::Filter));
        assert!(!s.contains(Operator::Rate));
        assert!(s.remove(Operator::Filter));
        assert!(!s.remove(Operator::Filter));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_iter_is_sorted_by_index() {
        let s: LabelSet<Goal> =
            [Goal::Transcription, Goal::EntityResolution, Goal::SentimentAnalysis]
                .into_iter()
                .collect();
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![Goal::EntityResolution, Goal::SentimentAnalysis, Goal::Transcription]);
    }

    #[test]
    fn set_complexity() {
        let simple: LabelSet<Goal> = LabelSet::only(Goal::SentimentAnalysis);
        assert_eq!(simple.complexity(), Some(Complexity::Simple));
        let mixed: LabelSet<Goal> =
            [Goal::SentimentAnalysis, Goal::Transcription].into_iter().collect();
        assert_eq!(mixed.complexity(), Some(Complexity::Complex), "any complex ⇒ complex");
        assert_eq!(LabelSet::<Goal>::empty().complexity(), None);
    }

    #[test]
    fn set_bits_roundtrip() {
        let s: LabelSet<DataType> = [DataType::Text, DataType::Webpage].into_iter().collect();
        let back = LabelSet::<DataType>::from_bits(s.bits()).unwrap();
        assert_eq!(s, back);
        assert!(LabelSet::<DataType>::from_bits(1 << 15).is_err(), "out-of-range bit rejected");
    }

    #[test]
    fn set_display() {
        let s: LabelSet<Goal> = [Goal::EntityResolution, Goal::Transcription].into_iter().collect();
        assert_eq!(s.to_string(), "ER+T");
        assert_eq!(LabelSet::<Goal>::empty().to_string(), "-");
    }

    #[test]
    fn intersects() {
        let a: LabelSet<Operator> = [Operator::Filter, Operator::Rate].into_iter().collect();
        let b: LabelSet<Operator> = [Operator::Rate, Operator::Sort].into_iter().collect();
        let c: LabelSet<Operator> = LabelSet::only(Operator::Gather);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
