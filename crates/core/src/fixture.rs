//! Compact dataset fixtures for tests.
//!
//! [`DatasetBuilder`] is deliberately explicit: every entity is added by
//! hand and every [`TaskInstance`] field spelled out. Tests across the
//! workspace (and especially the `crowd-testkit` generators) want the
//! opposite trade-off — tiny adversarial datasets in a few lines, with the
//! boilerplate entities defaulted. This module provides that layer.
//!
//! The API is test support: it exists so unit, property, and differential
//! tests can construct valid datasets tersely. Production ingestion paths
//! should keep using [`DatasetBuilder`] directly.
//!
//! ```
//! use crowd_core::fixture::Fixture;
//! use crowd_core::prelude::*;
//!
//! let mut f = Fixture::new();
//! let w = f.add_worker();
//! let b = f.add_batch(Duration::ZERO);
//! f.instance(b, 0, w, 60, 30); // item 0, picked up at +60 s, 30 s of work
//! let ds = f.finish();
//! assert_eq!(ds.instances.len(), 1);
//! ```

use crate::answer::Answer;
use crate::dataset::{Dataset, DatasetBuilder, TaskInstance};
use crate::id::{BatchId, CountryId, InstanceId, ItemId, SourceId, TaskTypeId, WorkerId};
use crate::task::{Batch, TaskType};
use crate::time::{Duration, Timestamp};
use crate::worker::{Source, SourceKind, Worker};

/// A terse, validating dataset fixture builder.
///
/// One default source, country, and task type are created up front; every
/// other entity is added on demand. Instance times are expressed as offsets
/// from the batch creation time, so fixtures read like event timelines.
#[derive(Debug)]
pub struct Fixture {
    b: DatasetBuilder,
    t0: Timestamp,
    default_source: SourceId,
    default_country: CountryId,
    default_type: TaskTypeId,
}

impl Fixture {
    /// A fixture anchored at Monday 2015-01-05 (inside the paper's
    /// high-activity regime).
    pub fn new() -> Fixture {
        Fixture::at(Timestamp::from_ymd(2015, 1, 5))
    }

    /// A fixture anchored at an explicit origin timestamp.
    pub fn at(t0: Timestamp) -> Fixture {
        let mut b = DatasetBuilder::new();
        let default_source = b.add_source(Source::new("fixture", SourceKind::Dedicated));
        let default_country = b.add_country("Fixtureland");
        let default_type = b.add_task_type(TaskType::new("fixture task"));
        Fixture { b, t0, default_source, default_country, default_type }
    }

    /// The fixture's origin timestamp.
    pub fn t0(&self) -> Timestamp {
        self.t0
    }

    /// The default source every [`Fixture::add_worker`] worker belongs to.
    pub fn default_source(&self) -> SourceId {
        self.default_source
    }

    /// The default country every [`Fixture::add_worker`] worker lives in.
    pub fn default_country(&self) -> CountryId {
        self.default_country
    }

    /// Adds a source of the given kind.
    pub fn add_source(&mut self, name: &str, kind: SourceKind) -> SourceId {
        self.b.add_source(Source::new(name, kind))
    }

    /// Adds a country.
    pub fn add_country(&mut self, name: &str) -> CountryId {
        self.b.add_country(name)
    }

    /// Adds a task type with the given choice arity.
    pub fn add_task_type(&mut self, title: &str, arity: u16) -> TaskTypeId {
        self.b.add_task_type(TaskType::new(title).with_choice_arity(arity))
    }

    /// Adds a worker under the default source and country.
    pub fn add_worker(&mut self) -> WorkerId {
        let (s, c) = (self.default_source, self.default_country);
        self.add_worker_from(s, c)
    }

    /// Adds `n` workers under the default source and country.
    pub fn add_workers(&mut self, n: usize) -> Vec<WorkerId> {
        (0..n).map(|_| self.add_worker()).collect()
    }

    /// Adds a worker under an explicit source and country.
    pub fn add_worker_from(&mut self, source: SourceId, country: CountryId) -> WorkerId {
        self.b.add_worker(Worker::new(source, country))
    }

    /// Adds a sampled batch of the default task type, created `offset`
    /// after the fixture origin, with a minimal valid HTML page.
    pub fn add_batch(&mut self, offset: Duration) -> BatchId {
        let tt = self.default_type;
        self.add_batch_of(tt, offset, "<p>fixture</p>")
    }

    /// Adds a sampled batch with explicit task type and HTML.
    pub fn add_batch_of(&mut self, tt: TaskTypeId, offset: Duration, html: &str) -> BatchId {
        self.b.add_batch(Batch::new(tt, self.t0 + offset).with_html(html))
    }

    /// Adds a batch outside the observed sample (no HTML, `sampled =
    /// false`) — these exist in the batch table but carry no instances in
    /// the paper's dataset. Fixtures may still attach instances to them to
    /// probe the "unsampled batch with activity" edge case.
    pub fn add_unsampled_batch(&mut self, offset: Duration) -> BatchId {
        let tt = self.default_type;
        self.b.add_batch(Batch::new(tt, self.t0 + offset).unsampled())
    }

    /// Adds one instance: `worker` picks `item` of `batch` up
    /// `pickup_secs` after the batch creation and works for `work_secs`.
    /// Trust defaults to 0.9 and the answer to `Choice(0)`.
    pub fn instance(
        &mut self,
        batch: BatchId,
        item: u32,
        worker: WorkerId,
        pickup_secs: i64,
        work_secs: i64,
    ) -> InstanceId {
        self.instance_full(batch, item, worker, pickup_secs, work_secs, 0.9, Answer::Choice(0))
    }

    /// Adds one instance with every field explicit. Offsets are relative
    /// to the instance's batch creation time.
    #[allow(clippy::too_many_arguments)]
    pub fn instance_full(
        &mut self,
        batch: BatchId,
        item: u32,
        worker: WorkerId,
        pickup_secs: i64,
        work_secs: i64,
        trust: f32,
        answer: Answer,
    ) -> InstanceId {
        let created = self.b.batch_created_at(batch);
        let start = created + Duration::from_secs(pickup_secs);
        self.b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(item),
            worker,
            start,
            end: start + Duration::from_secs(work_secs),
            trust,
            answer,
        })
    }

    /// Validates and returns the dataset.
    pub fn finish(self) -> Dataset {
        self.b.finish().expect("fixture datasets are constructed valid")
    }
}

impl Default for Fixture {
    fn default() -> Self {
        Fixture::new()
    }
}

/// A single-batch, single-worker dataset with `rows` instances whose trust
/// scores alternate between magnitudes (1e-4 vs 0.875), making any float
/// accumulation over them order-sensitive. The workhorse of the
/// chunk-boundary and merge-order regression tests.
pub fn order_sensitive(rows: usize) -> Dataset {
    let mut f = Fixture::new();
    let w = f.add_worker();
    let b = f.add_batch(Duration::ZERO);
    f.b.reserve_instances(rows);
    for i in 0..rows {
        f.instance_full(
            b,
            (i % 7) as u32,
            w,
            i as i64,
            30,
            if i % 3 == 0 { 1.0e-4 } else { 0.875 },
            Answer::Choice((i % 2) as u16),
        );
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_valid_datasets() {
        let mut f = Fixture::new();
        let w = f.add_worker();
        let ws = f.add_workers(2);
        let b = f.add_batch(Duration::from_days(1));
        let u = f.add_unsampled_batch(Duration::ZERO);
        f.instance(b, 0, w, 60, 30);
        f.instance(b, 0, ws[0], 120, 45);
        f.instance(u, 0, ws[1], 10, 5);
        let ds = f.finish();
        assert_eq!(ds.instances.len(), 3);
        assert_eq!(ds.workers.len(), 3);
        assert_eq!(ds.summary().batches_sampled, 1);
        ds.validate().unwrap();
    }

    #[test]
    fn instance_offsets_are_batch_relative() {
        let mut f = Fixture::new();
        let w = f.add_worker();
        let b = f.add_batch(Duration::from_days(2));
        f.instance(b, 0, w, 90, 30);
        let ds = f.finish();
        let row = ds.instances.row(0);
        assert_eq!(row.start - ds.batch(b).created_at, Duration::from_secs(90));
        assert_eq!(row.work_time(), Duration::from_secs(30));
    }

    #[test]
    fn order_sensitive_has_varied_trust() {
        let ds = order_sensitive(10);
        assert_eq!(ds.instances.len(), 10);
        let distinct: std::collections::HashSet<u32> =
            ds.instances.trust_col().iter().map(|t| t.to_bits()).collect();
        assert_eq!(distinct.len(), 2);
    }
}
