//! Civil time without external dependencies.
//!
//! The study spans Jul 2012 – Jul 2016 and aggregates by day-of-week
//! (Fig. 3), by week (Figs. 1, 2, 4, 5, 12, 26), and by day (§3.1 load
//! statistics). This module provides a second-resolution [`Timestamp`],
//! proleptic-Gregorian conversions (Howard Hinnant's `days_from_civil`
//! algorithm), ISO weekdays, and the `Mon'YY` week labels used by the
//! paper's figures.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::error::{CoreError, Result};

/// Seconds in a civil day.
pub const SECS_PER_DAY: i64 = 86_400;
/// Seconds in a civil week.
pub const SECS_PER_WEEK: i64 = 7 * SECS_PER_DAY;

/// A span of time with second resolution. May be negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Duration(i64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Duration(secs)
    }

    /// Creates a duration from whole minutes.
    #[inline]
    pub const fn from_mins(mins: i64) -> Self {
        Duration(mins * 60)
    }

    /// Creates a duration from whole hours.
    #[inline]
    pub const fn from_hours(hours: i64) -> Self {
        Duration(hours * 3_600)
    }

    /// Creates a duration from whole days.
    #[inline]
    pub const fn from_days(days: i64) -> Self {
        Duration(days * SECS_PER_DAY)
    }

    /// Total seconds (negative if the duration is negative).
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Total duration expressed in fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Total duration expressed in fractional days.
    #[inline]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }

    /// True when the duration is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let (d, rem) = (s / SECS_PER_DAY as u64, s % SECS_PER_DAY as u64);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, sec) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{sign}{d}d{h:02}h{m:02}m{sec:02}s")
        } else if h > 0 {
            write!(f, "{sign}{h}h{m:02}m{sec:02}s")
        } else if m > 0 {
            write!(f, "{sign}{m}m{sec:02}s")
        } else {
            write!(f, "{sign}{sec}s")
        }
    }
}

/// Day of the week, ISO numbering (`Mon = 0` … `Sun = 6`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// All weekdays, Monday first — the x-axis order of paper Fig. 3.
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Index with `Mon = 0` … `Sun = 6`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Construct from an index `0..7` (`Mon = 0`).
    pub fn from_index(i: usize) -> Option<Weekday> {
        Weekday::ALL.get(i).copied()
    }

    /// True for Saturday and Sunday (paper §3.1: weekend troughs).
    #[inline]
    pub const fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Three-letter English abbreviation, as printed in Fig. 3.
    pub const fn abbrev(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Index of a civil week. Week 0 contains the Unix epoch (1970-01-01 was a
/// Thursday; weeks start on Monday, so week 0 starts 1969-12-29).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct WeekIndex(pub i32);

impl WeekIndex {
    /// Timestamp of this week's Monday 00:00:00.
    pub fn start(self) -> Timestamp {
        Timestamp::from_secs(EPOCH_WEEK_START + self.0 as i64 * SECS_PER_WEEK)
    }

    /// The following week.
    #[inline]
    pub fn next(self) -> WeekIndex {
        WeekIndex(self.0 + 1)
    }

    /// Label in the paper's `Mon'YY` axis style, e.g. `Jul'12`.
    pub fn label(self) -> String {
        self.start().month_year_label()
    }
}

/// Offset (seconds) from the Unix epoch back to the Monday of its week.
/// 1970-01-01 was a Thursday, i.e. 3 days after Monday.
const EPOCH_WEEK_START: i64 = -3 * SECS_PER_DAY;

/// An instant in civil (UTC) time with second resolution.
///
/// Internally the count of seconds since the Unix epoch; may be negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Timestamp(i64);

impl Timestamp {
    /// Creates a timestamp from seconds since the Unix epoch.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Seconds since the Unix epoch.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Builds a timestamp from a civil date at midnight UTC.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        Timestamp(days_from_civil(year, month, day) * SECS_PER_DAY)
    }

    /// Builds a timestamp from a civil date and time of day.
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        debug_assert!(hour < 24 && min < 60 && sec < 60);
        Timestamp(
            days_from_civil(year, month, day) * SECS_PER_DAY
                + i64::from(hour) * 3_600
                + i64::from(min) * 60
                + i64::from(sec),
        )
    }

    /// Parses `YYYY-MM-DD` or `YYYY-MM-DDTHH:MM:SS`.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || CoreError::InvalidTime(s.to_owned());
        let (date, time) = match s.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.splitn(3, '-');
        // A leading '-' would split wrong; the study's range is CE years only.
        let year: i32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if !(1..=12).contains(&month)
            || !(1..=31).contains(&day)
            || day > days_in_month(year, month)
        {
            return Err(bad());
        }
        let (mut h, mut m, mut sec) = (0u32, 0u32, 0u32);
        if let Some(t) = time {
            let mut tp = t.splitn(3, ':');
            h = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            m = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            sec = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            if h >= 24 || m >= 60 || sec >= 60 {
                return Err(bad());
            }
        }
        Ok(Timestamp::from_ymd_hms(year, month, day, h, m, sec))
    }

    /// Civil days since the Unix epoch (floored).
    #[inline]
    pub fn day_number(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// The `(year, month, day)` of this instant.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.day_number())
    }

    /// The civil year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// The civil month, `1..=12`.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Seconds since local midnight.
    #[inline]
    pub fn seconds_of_day(self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }

    /// ISO weekday of this instant.
    pub fn weekday(self) -> Weekday {
        // Day 0 (1970-01-01) was a Thursday → index 3.
        let idx = (self.day_number() + 3).rem_euclid(7) as usize;
        Weekday::ALL[idx]
    }

    /// The week (Monday-aligned) containing this instant.
    pub fn week(self) -> WeekIndex {
        let w = (self.0 - EPOCH_WEEK_START).div_euclid(SECS_PER_WEEK);
        WeekIndex(i32::try_from(w).expect("week index out of range"))
    }

    /// Midnight at the start of this instant's day.
    pub fn day_start(self) -> Timestamp {
        Timestamp(self.day_number() * SECS_PER_DAY)
    }

    /// Label in the paper's axis style, e.g. `Jul'12`.
    pub fn month_year_label(self) -> String {
        let (y, m, _) = self.ymd();
        format!("{}'{:02}", MONTH_ABBREV[(m - 1) as usize], y.rem_euclid(100))
    }

    /// ISO-8601 `YYYY-MM-DDTHH:MM:SS` rendering.
    pub fn iso8601(self) -> String {
        let (y, mo, d) = self.ymd();
        let sod = self.seconds_of_day();
        format!(
            "{y:04}-{mo:02}-{d:02}T{:02}:{:02}:{:02}",
            sod / 3_600,
            (sod % 3_600) / 60,
            sod % 60
        )
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_secs())
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_secs();
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.as_secs())
    }
}

impl SubAssign<Duration> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.as_secs();
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration::from_secs(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso8601())
    }
}

const MONTH_ABBREV: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    debug_assert!((1..=12).contains(&month));
    debug_assert!((1..=days_in_month(year, month)).contains(&day));
    let y = i64::from(year) - i64::from(month <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((month + 9) % 12); // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a count of days since 1970-01-01 (Hinnant's algorithm).
pub fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // Verified against `date -d`.
        assert_eq!(days_from_civil(2012, 7, 1), 15_522);
        assert_eq!(days_from_civil(2016, 7, 1), 16_983);
        assert_eq!(days_from_civil(2000, 2, 29), 11_016);
        assert_eq!(civil_from_days(16_983), (2016, 7, 1));
    }

    #[test]
    fn weekday_of_known_dates() {
        assert_eq!(Timestamp::from_ymd(1970, 1, 1).weekday(), Weekday::Thu);
        assert_eq!(Timestamp::from_ymd(2015, 1, 1).weekday(), Weekday::Thu);
        assert_eq!(Timestamp::from_ymd(2015, 1, 5).weekday(), Weekday::Mon);
        assert_eq!(Timestamp::from_ymd(2016, 2, 29).weekday(), Weekday::Mon);
        assert_eq!(Timestamp::from_ymd(2012, 7, 1).weekday(), Weekday::Sun);
    }

    #[test]
    fn weekday_before_epoch() {
        // 1969-12-31 was a Wednesday.
        assert_eq!(Timestamp::from_ymd(1969, 12, 31).weekday(), Weekday::Wed);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2015));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2015, 2), 28);
        assert_eq!(days_in_month(2015, 4), 30);
    }

    #[test]
    fn week_alignment() {
        // 2015-01-05 was a Monday; its week starts at itself.
        let mon = Timestamp::from_ymd(2015, 1, 5);
        assert_eq!(mon.week().start(), mon);
        // Any instant later in that week maps to the same week.
        let sun_evening = Timestamp::from_ymd_hms(2015, 1, 11, 23, 59, 59);
        assert_eq!(sun_evening.week(), mon.week());
        let next_mon = Timestamp::from_ymd(2015, 1, 12);
        assert_eq!(next_mon.week(), mon.week().next());
    }

    #[test]
    fn week_zero_contains_epoch() {
        let epoch = Timestamp::from_secs(0);
        assert_eq!(epoch.week(), WeekIndex(0));
        assert_eq!(WeekIndex(0).start(), Timestamp::from_ymd(1969, 12, 29));
        assert_eq!(WeekIndex(0).start().weekday(), Weekday::Mon);
    }

    #[test]
    fn labels_match_paper_axis_style() {
        assert_eq!(Timestamp::from_ymd(2012, 7, 15).month_year_label(), "Jul'12");
        assert_eq!(Timestamp::from_ymd(2016, 1, 2).month_year_label(), "Jan'16");
    }

    #[test]
    fn parse_roundtrip() {
        let t = Timestamp::parse("2015-03-02T09:30:05").unwrap();
        assert_eq!(t, Timestamp::from_ymd_hms(2015, 3, 2, 9, 30, 5));
        assert_eq!(t.iso8601(), "2015-03-02T09:30:05");
        let d = Timestamp::parse("2014-12-31").unwrap();
        assert_eq!(d, Timestamp::from_ymd(2014, 12, 31));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "2015", "2015-13-01", "2015-02-30", "2015-01-01T25:00:00", "x-y-z"] {
            assert!(Timestamp::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_ymd(2015, 6, 1);
        let u = t + Duration::from_days(30);
        assert_eq!(u.ymd(), (2015, 7, 1));
        assert_eq!(u - t, Duration::from_days(30));
        assert_eq!((t - Duration::from_secs(1)).ymd(), (2015, 5, 31));
    }

    #[test]
    fn duration_display() {
        assert_eq!(Duration::from_secs(42).to_string(), "42s");
        assert_eq!(Duration::from_secs(3_725).to_string(), "1h02m05s");
        assert_eq!(Duration::from_days(2).to_string(), "2d00h00m00s");
        assert_eq!(Duration::from_secs(-90).to_string(), "-1m30s");
    }

    #[test]
    fn seconds_of_day() {
        let t = Timestamp::from_ymd_hms(2015, 3, 2, 1, 2, 3);
        assert_eq!(t.seconds_of_day(), 3_723);
        assert_eq!(t.day_start(), Timestamp::from_ymd(2015, 3, 2));
    }

    #[test]
    fn civil_roundtrip_exhaustive_window() {
        // Every day of the study period round-trips.
        let start = days_from_civil(2012, 1, 1);
        let end = days_from_civil(2017, 1, 1);
        let mut prev_dow = Timestamp::from_secs(start * SECS_PER_DAY).weekday().index();
        for day in start..end {
            let (y, m, d) = civil_from_days(day);
            assert_eq!(days_from_civil(y, m, d), day);
            let dow = Timestamp::from_secs(day * SECS_PER_DAY).weekday().index();
            if day > start {
                assert_eq!(dow, (prev_dow + 1) % 7, "weekdays advance by one");
            }
            prev_dow = dow;
        }
    }
}
