//! Tasks, batches, and the design parameters extracted from task HTML.

use std::sync::Arc;

use crate::id::TaskTypeId;
use crate::labels::{DataType, Goal, LabelSet, Operator};
use crate::time::Timestamp;

/// Requester-controlled design parameters of a task interface, as extracted
/// from its HTML source (paper §2.4 "Design parameters", analyzed in §4).
///
/// These are the features the paper correlates against the three
/// effectiveness metrics; the field names mirror the paper's notation
/// (`#words`, `#text-box`, `#examples`, `#images`, `#items`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignFeatures {
    /// Number of words in the task's HTML page (§4.3).
    pub words: u32,
    /// Number of free-form text input boxes (§4.4).
    pub text_boxes: u32,
    /// Number of prominently displayed examples — the paper counts the word
    /// "example" wrapped in a tag of its own (§4.6).
    pub examples: u32,
    /// Number of `<img>` tags (§4.7).
    pub images: u32,
    /// Number of items operated on across the batch (§4.5).
    pub items: u32,
    /// Total input fields of any kind (§4.8 reports no significant
    /// correlation, but the feature is part of the enrichment).
    pub input_fields: u32,
    /// Whether the interface carries an instructions block (§2.4).
    pub has_instructions: bool,
}

impl DesignFeatures {
    /// True when the interface contains at least one free-form text box.
    #[inline]
    pub fn has_text_box(&self) -> bool {
        self.text_boxes > 0
    }

    /// True when at least one prominent example is present.
    #[inline]
    pub fn has_example(&self) -> bool {
        self.examples > 0
    }

    /// True when at least one image is present.
    #[inline]
    pub fn has_image(&self) -> bool {
        self.images > 0
    }

    /// The feature vector used by the §4.9 prediction experiments, in a
    /// fixed order: `[items, words, text_boxes, examples, images]`.
    pub fn vector(&self) -> [f64; 5] {
        [
            f64::from(self.items),
            f64::from(self.words),
            f64::from(self.text_boxes),
            f64::from(self.examples),
            f64::from(self.images),
        ]
    }
}

/// A *distinct task* — the deduplicated unit of work a requester issues
/// repeatedly across batches (paper §2 overloads "task" this way; ~6,600
/// distinct tasks exist in the full dataset).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskType {
    /// Short textual description, as in the per-batch metadata (§2.3).
    pub title: String,
    /// Manually assigned goals (§3.4); empty when unlabeled.
    pub goals: LabelSet<Goal>,
    /// Manually assigned operators (§3.4).
    pub operators: LabelSet<Operator>,
    /// Manually assigned data types (§3.4).
    pub data_types: LabelSet<DataType>,
    /// Number of answer alternatives for choice questions (the cardinality
    /// of the underlying answer domain; not part of the paper's features but
    /// needed to interpret [`crate::Answer::Choice`] values).
    pub choice_arity: u16,
}

impl TaskType {
    /// Creates an unlabeled task type with a binary answer domain.
    pub fn new(title: impl Into<String>) -> Self {
        TaskType {
            title: title.into(),
            goals: LabelSet::empty(),
            operators: LabelSet::empty(),
            data_types: LabelSet::empty(),
            choice_arity: 2,
        }
    }

    /// Adds a goal label (builder style).
    #[must_use]
    pub fn with_goal(mut self, goal: Goal) -> Self {
        self.goals.insert(goal);
        self
    }

    /// Adds an operator label (builder style).
    #[must_use]
    pub fn with_operator(mut self, op: Operator) -> Self {
        self.operators.insert(op);
        self
    }

    /// Adds a data-type label (builder style).
    #[must_use]
    pub fn with_data_type(mut self, dt: DataType) -> Self {
        self.data_types.insert(dt);
        self
    }

    /// Sets the answer-domain cardinality (builder style).
    #[must_use]
    pub fn with_choice_arity(mut self, arity: u16) -> Self {
        self.choice_arity = arity.max(2);
        self
    }

    /// True when the type received manual labels (§2.4: ~83% of batches did).
    pub fn is_labeled(&self) -> bool {
        !self.goals.is_empty() || !self.operators.is_empty() || !self.data_types.is_empty()
    }
}

/// A batch: a set of task instances issued together by a requester (§2).
///
/// The marketplace provided batch-level data: a one-sentence description and
/// the HTML of one sample task instance (§2.3). Batches outside the 12k-batch
/// sample carry only title and creation date (`html == None`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Batch {
    /// The distinct task this batch instantiates. In the real dataset this
    /// linkage is *recovered* by clustering HTML (§3.3); the simulator also
    /// stores the ground-truth assignment here so clustering quality is
    /// measurable.
    pub task_type: TaskTypeId,
    /// When the batch was created / posted to the marketplace.
    pub created_at: Timestamp,
    /// HTML source of a sample task instance; `None` outside the sample.
    /// Stored as a shared `Arc<str>` so identical pages (the common case
    /// when a task is re-issued across batches) are interned once by
    /// [`crate::dataset::DatasetBuilder`] instead of duplicated per batch.
    pub html: Option<Arc<str>>,
    /// Whether this batch is inside the fully-observed 12k sample (§2.2).
    pub sampled: bool,
}

impl Batch {
    /// Creates a sampled batch without HTML attached yet.
    pub fn new(task_type: TaskTypeId, created_at: Timestamp) -> Self {
        Batch { task_type, created_at, html: None, sampled: true }
    }

    /// Attaches sample-task HTML (builder style).
    #[must_use]
    pub fn with_html(mut self, html: impl Into<Arc<str>>) -> Self {
        self.html = Some(html.into());
        self
    }

    /// Marks the batch as outside the observed sample (builder style).
    #[must_use]
    pub fn unsampled(mut self) -> Self {
        self.sampled = false;
        self.html = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_feature_flags() {
        let f = DesignFeatures { text_boxes: 2, images: 0, examples: 1, ..Default::default() };
        assert!(f.has_text_box());
        assert!(f.has_example());
        assert!(!f.has_image());
    }

    #[test]
    fn feature_vector_order() {
        let f = DesignFeatures {
            items: 56,
            words: 466,
            text_boxes: 1,
            examples: 2,
            images: 3,
            ..Default::default()
        };
        assert_eq!(f.vector(), [56.0, 466.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn task_type_builder() {
        let tt = TaskType::new("transcribe receipts")
            .with_goal(Goal::Transcription)
            .with_operator(Operator::Extract)
            .with_data_type(DataType::Image)
            .with_choice_arity(4);
        assert!(tt.goals.contains(Goal::Transcription));
        assert!(tt.operators.contains(Operator::Extract));
        assert!(tt.data_types.contains(DataType::Image));
        assert_eq!(tt.choice_arity, 4);
        assert!(tt.is_labeled());
        assert!(!TaskType::new("bare").is_labeled());
    }

    #[test]
    fn choice_arity_floor_is_two() {
        let tt = TaskType::new("x").with_choice_arity(0);
        assert_eq!(tt.choice_arity, 2, "a choice question needs ≥ 2 alternatives");
    }

    #[test]
    fn batch_builder() {
        let t0 = Timestamp::from_ymd(2015, 5, 1);
        let b = Batch::new(TaskTypeId::new(3), t0).with_html("<div/>");
        assert!(b.sampled);
        assert_eq!(b.html.as_deref(), Some("<div/>"));
        let u = Batch::new(TaskTypeId::new(3), t0).with_html("<div/>").unsampled();
        assert!(!u.sampled);
        assert_eq!(u.html, None, "unsampled batches lose their HTML (paper §2.2)");
    }
}
