//! Workers, labor sources, and worker geography (paper §2.3, §5).

use crate::id::{CountryId, SourceId};

/// Broad behavioural class of a labor source (paper §5.1 distinguishes
/// dedicated workforces, on-demand/one-off workforces, the marketplace's own
/// internal pool, and sources specialized by region or domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SourceKind {
    /// Engaged workforce performing many tasks per worker (e.g. clixsense).
    Dedicated,
    /// One-off participation, few tasks per worker (40% of sources have
    /// workers doing ≤ 20 tasks each — Fig. 26a).
    OnDemand,
    /// The marketplace's internal pool ("skilled contributors", ~2% of
    /// tasks — §2.1, §5.1).
    Internal,
    /// Geographically specialized (e.g. imerit_india, yute_jamaica).
    Regional,
    /// Domain specialized (e.g. ojooo: advertising/marketing campaigns).
    DomainSpecific,
}

impl SourceKind {
    /// All variants.
    pub const ALL: [SourceKind; 5] = [
        SourceKind::Dedicated,
        SourceKind::OnDemand,
        SourceKind::Internal,
        SourceKind::Regional,
        SourceKind::DomainSpecific,
    ];

    /// Short display name.
    pub const fn name(self) -> &'static str {
        match self {
            SourceKind::Dedicated => "dedicated",
            SourceKind::OnDemand => "on-demand",
            SourceKind::Internal => "internal",
            SourceKind::Regional => "regional",
            SourceKind::DomainSpecific => "domain-specific",
        }
    }
}

/// A labor source that routes workers into the marketplace (paper §5.1:
/// 139 sources; Table 4 lists them).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Source {
    /// Source name as listed in Table 4 (e.g. `neodev`, `clixsense`, `amt`).
    pub name: String,
    /// Behavioural class.
    pub kind: SourceKind,
}

impl Source {
    /// Creates a source.
    pub fn new(name: impl Into<String>, kind: SourceKind) -> Self {
        Source { name: name.into(), kind }
    }

    /// True for the marketplace's internal pool.
    pub fn is_internal(&self) -> bool {
        self.kind == SourceKind::Internal
    }
}

/// A worker's country (paper Fig. 28: 148 countries).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Country {
    /// Display name, e.g. `USA`, `Venezuela`.
    pub name: String,
}

impl Country {
    /// Creates a country record.
    pub fn new(name: impl Into<String>) -> Self {
        Country { name: name.into() }
    }
}

/// A crowd worker. Only marketplace-observable attributes are stored
/// (paper §2.3: worker ID, location, source); latent skill lives in the
/// simulator and surfaces only through per-instance trust scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Worker {
    /// The labor source that recruited this worker.
    pub source: SourceId,
    /// The worker's country.
    pub country: CountryId,
}

impl Worker {
    /// Creates a worker.
    pub fn new(source: SourceId, country: CountryId) -> Self {
        Worker { source, country }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_kinds_have_names() {
        for k in SourceKind::ALL {
            assert!(!k.name().is_empty());
        }
        assert_eq!(SourceKind::Internal.name(), "internal");
    }

    #[test]
    fn internal_flag() {
        assert!(Source::new("internal", SourceKind::Internal).is_internal());
        assert!(!Source::new("amt", SourceKind::OnDemand).is_internal());
    }

    #[test]
    fn worker_is_copy_and_small() {
        let w = Worker::new(SourceId::new(1), CountryId::new(2));
        let w2 = w; // Copy
        assert_eq!(w, w2);
        assert_eq!(std::mem::size_of::<Worker>(), 8);
    }
}
