//! Typed, zero-cost entity identifiers.
//!
//! Every entity table in a [`crate::Dataset`] is a dense `Vec`; an id is the
//! row index wrapped in a newtype so that, e.g., a [`WorkerId`] can never be
//! used to index the batches table. Ids are `u32` (the paper's full dataset
//! has 27M instances — comfortably within range) to keep hot row types small,
//! per the smaller-integers guidance in the Rust performance guide.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        #[cfg_attr(feature = "serde", serde(transparent))]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw row index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Wraps a `usize` row index, panicking if it exceeds `u32::MAX`.
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity table exceeds u32::MAX rows"))
            }

            /// Returns the raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the index as `usize`, for direct table indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a crowd worker (paper §2.3 "worker ID").
    WorkerId, "w"
);
define_id!(
    /// Identifier of a distinct task type — the deduplicated "unit of work
    /// issued across time and batches" (paper §2, task vs. task instance).
    TaskTypeId, "t"
);
define_id!(
    /// Identifier of a batch of task instances issued together (paper §2).
    BatchId, "b"
);
define_id!(
    /// Identifier of a single task instance — one worker's unit of work.
    InstanceId, "i"
);
define_id!(
    /// Identifier of the item a question operates on (paper §2.3 "item ID").
    /// Item ids are scoped to a batch's task type, so two workers answering
    /// the same `(batch, item)` pair judged the same underlying datum.
    ItemId, "m"
);
define_id!(
    /// Identifier of a labor source feeding workers into the marketplace
    /// (paper §5.1; the marketplace aggregates 139 sources).
    SourceId, "s"
);
define_id!(
    /// Identifier of a worker's country (paper Fig. 28: 148 countries).
    CountryId, "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let id = WorkerId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42usize);
        assert_eq!(usize::from(id), 42usize);
    }

    #[test]
    fn from_usize_roundtrips() {
        let id = BatchId::from_usize(123_456);
        assert_eq!(id.index(), 123_456);
    }

    #[test]
    #[should_panic(expected = "u32::MAX")]
    fn from_usize_overflow_panics() {
        let _ = InstanceId::from_usize(u32::MAX as usize + 1);
    }

    #[test]
    fn display_and_debug_carry_tag() {
        assert_eq!(format!("{}", SourceId::new(7)), "s7");
        assert_eq!(format!("{:?}", ItemId::new(9)), "m9");
        assert_eq!(format!("{}", TaskTypeId::new(0)), "t0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CountryId::new(1) < CountryId::new(2));
        let mut v = vec![WorkerId::new(3), WorkerId::new(1), WorkerId::new(2)];
        v.sort();
        assert_eq!(v, vec![WorkerId::new(1), WorkerId::new(2), WorkerId::new(3)]);
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<WorkerId>(), 4);
        assert_eq!(std::mem::size_of::<Option<()>>(), 1);
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(BatchId::new(5), "five");
        assert_eq!(m[&BatchId::new(5)], "five");
    }
}
