//! Bounded retry with exponential backoff, on an injected clock.
//!
//! Transient IO errors (`Interrupted`, `WouldBlock`) are retried in place
//! with exponentially growing delays; everything else is surfaced
//! immediately. The clock is a trait so tests drive the policy with a
//! [`ManualClock`] that records sleeps instead of performing them — the
//! whole retry suite runs in zero wall-clock time.

use std::io::{self, Read};
use std::sync::Mutex;
use std::time::Duration;

use crowd_core::error::CoreError;

/// Sleep provider for backoff delays.
pub trait Clock: Send + Sync {
    /// Waits for `d` (or pretends to).
    fn sleep(&self, d: Duration);
}

/// The real clock: `std::thread::sleep`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A test clock: records requested sleeps, never blocks.
#[derive(Debug, Default)]
pub struct ManualClock {
    slept: Mutex<Vec<Duration>>,
}

impl ManualClock {
    /// A fresh manual clock.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Every sleep requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().expect("clock lock").clone()
    }

    /// Total virtual time slept.
    pub fn total_slept(&self) -> Duration {
        self.slept().iter().sum()
    }
}

impl Clock for ManualClock {
    fn sleep(&self, d: Duration) {
        self.slept.lock().expect("clock lock").push(d);
    }
}

/// Exponential backoff policy: retry `r` waits `min(cap, base · factor^r)`,
/// optionally jittered (seeded, deterministic) so concurrent retriers
/// hitting the same contended resource don't synchronize their retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Retries allowed after the initial attempt.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier between consecutive delays.
    pub factor: u32,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// When set, each delay is jittered into `[delay/2, delay]` by a
    /// deterministic function of `(seed, retry)` — replayable in tests,
    /// decorrelated across retriers that use distinct seeds.
    pub jitter_seed: Option<u64>,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            max_retries: 4,
            base: Duration::from_millis(10),
            factor: 2,
            cap: Duration::from_secs(1),
            jitter_seed: None,
        }
    }
}

impl Backoff {
    /// No retries: the first transient error is terminal.
    pub const fn none() -> Backoff {
        Backoff {
            max_retries: 0,
            base: Duration::ZERO,
            factor: 1,
            cap: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// Enables seeded jitter. Give each concurrent retrier its own seed
    /// (stream id, table index, thread ordinal) so their schedules
    /// decorrelate; the same seed always produces the same schedule.
    pub fn with_jitter(mut self, seed: u64) -> Backoff {
        self.jitter_seed = Some(seed);
        self
    }

    /// Delay before retry number `retry` (0-based). With jitter enabled
    /// the exponential delay `d` becomes a deterministic point in
    /// `[d/2, d]`, so jitter never exceeds the un-jittered schedule (and
    /// therefore never exceeds `cap`).
    pub fn delay(&self, retry: u32) -> Duration {
        let mult = self.factor.saturating_pow(retry.min(20));
        let full = self.base.saturating_mul(mult).min(self.cap);
        let Some(seed) = self.jitter_seed else { return full };
        let nanos = u64::try_from(full.as_nanos()).unwrap_or(u64::MAX);
        if nanos < 2 {
            return full;
        }
        let half = nanos / 2;
        let offset = crowd_core::rng::stream_seed(seed, u64::from(retry)) % (nanos - half + 1);
        Duration::from_nanos(half + offset)
    }
}

/// Whether an IO error is worth retrying in place (`Interrupted`,
/// `WouldBlock`), as opposed to a permanent failure.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

/// Reads `r` to the end, retrying transient errors under `backoff` on
/// `clock`. Returns the bytes plus the number of retries spent.
///
/// Hand-rolled rather than `read_to_end` because std swallows
/// `Interrupted` silently — the whole point here is to *count* and bound
/// those, then surface exhaustion as a typed
/// [`CoreError::IoExhausted`].
pub fn read_all_with_retry(
    r: &mut dyn Read,
    table: &'static str,
    backoff: &Backoff,
    clock: &dyn Clock,
) -> Result<(Vec<u8>, u32), CoreError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut retries = 0u32;
    loop {
        match r.read(&mut chunk) {
            Ok(0) => return Ok((buf, retries)),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_transient(&e) => {
                if retries >= backoff.max_retries {
                    return Err(CoreError::IoExhausted {
                        table,
                        attempts: retries + 1,
                        message: e.to_string(),
                    });
                }
                clock.sleep(backoff.delay(retries));
                retries += 1;
            }
            Err(e) => {
                return Err(CoreError::Csv { line: 0, message: format!("{table}: {e}") });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChaosReader, Fault, FaultPlan};
    use std::io::Cursor;

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let b = Backoff {
            max_retries: 10,
            base: Duration::from_millis(10),
            factor: 2,
            cap: Duration::from_millis(55),
            jitter_seed: None,
        };
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(40));
        assert_eq!(b.delay(3), Duration::from_millis(55), "capped");
        assert_eq!(b.delay(31), Duration::from_millis(55), "no overflow");
    }

    #[test]
    fn jittered_delays_are_deterministic_per_seed_and_stay_in_band() {
        let base = Backoff {
            max_retries: 10,
            base: Duration::from_millis(10),
            factor: 2,
            cap: Duration::from_millis(400),
            jitter_seed: None,
        };
        let a = base.with_jitter(7);
        let b = base.with_jitter(7);
        let c = base.with_jitter(8);
        for retry in 0..8 {
            let full = base.delay(retry);
            let jittered = a.delay(retry);
            assert_eq!(jittered, b.delay(retry), "same seed, same schedule");
            assert!(
                jittered >= full / 2 && jittered <= full,
                "retry {retry}: {jittered:?} outside [{:?}, {full:?}]",
                full / 2
            );
            assert!(jittered <= base.cap, "jitter must respect the cap");
        }
        // Distinct seeds must actually decorrelate: at least one retry in
        // the schedule differs.
        assert!(
            (0..8).any(|r| a.delay(r) != c.delay(r)),
            "seeds 7 and 8 produced identical schedules"
        );
    }

    #[test]
    fn jittered_schedule_is_pinned_per_seed_on_a_manual_clock() {
        // The exact virtual schedule for seed 42 is part of the contract:
        // a change to the jitter function shows up here, not as an
        // unexplained flake in a chaos run.
        let plan =
            FaultPlan::single(Fault::Transient { first_call: 1, times: 3, would_block: true });
        let mut r = ChaosReader::new(Cursor::new(b"hello world".to_vec()), &plan);
        let clock = ManualClock::new();
        let backoff = Backoff::default().with_jitter(42);
        let (bytes, retries) = read_all_with_retry(&mut r, "workers", &backoff, &clock).unwrap();
        assert_eq!(bytes, b"hello world");
        assert_eq!(retries, 3);
        let expect: Vec<Duration> = (0..3).map(|r| backoff.delay(r)).collect();
        assert_eq!(clock.slept(), expect, "sleeps must follow the seeded schedule exactly");
        // And that schedule is genuinely jittered relative to the raw one.
        let raw = Backoff::default();
        assert!(
            (0..3).any(|r| backoff.delay(r) != raw.delay(r)),
            "seed 42 left the schedule unjittered"
        );
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let plan =
            FaultPlan::single(Fault::Transient { first_call: 1, times: 3, would_block: true });
        let mut r = ChaosReader::new(Cursor::new(b"hello world".to_vec()), &plan);
        let clock = ManualClock::new();
        let (bytes, retries) =
            read_all_with_retry(&mut r, "workers", &Backoff::default(), &clock).unwrap();
        assert_eq!(bytes, b"hello world");
        assert_eq!(retries, 3);
        let slept = clock.slept();
        assert_eq!(slept.len(), 3, "one sleep per retry");
        assert!(slept[0] < slept[1] && slept[1] < slept[2], "growing delays");
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        let plan =
            FaultPlan::single(Fault::Transient { first_call: 0, times: 99, would_block: false });
        let mut r = ChaosReader::new(Cursor::new(b"data".to_vec()), &plan);
        let clock = ManualClock::new();
        let backoff = Backoff { max_retries: 2, ..Backoff::default() };
        let err = read_all_with_retry(&mut r, "batches", &backoff, &clock).unwrap_err();
        match err {
            CoreError::IoExhausted { table, attempts, .. } => {
                assert_eq!(table, "batches");
                assert_eq!(attempts, 3, "initial try + 2 retries");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(clock.slept().len(), 2);
    }

    #[test]
    fn zero_retry_policy_fails_immediately() {
        let plan =
            FaultPlan::single(Fault::Transient { first_call: 0, times: 1, would_block: false });
        let mut r = ChaosReader::new(Cursor::new(b"data".to_vec()), &plan);
        let clock = ManualClock::new();
        let err = read_all_with_retry(&mut r, "sources", &Backoff::none(), &clock).unwrap_err();
        assert!(matches!(err, CoreError::IoExhausted { attempts: 1, .. }));
        assert!(clock.slept().is_empty(), "no sleeps on a zero-retry policy");
    }

    #[test]
    fn clean_stream_spends_no_retries() {
        let mut r = Cursor::new(b"a,b\n1,2\n".to_vec());
        let clock = ManualClock::new();
        let (bytes, retries) =
            read_all_with_retry(&mut r, "sources", &Backoff::default(), &clock).unwrap();
        assert_eq!(retries, 0);
        assert_eq!(bytes.len(), 8);
        assert_eq!(clock.total_slept(), Duration::ZERO);
    }
}
