//! Live marketplace event stream: serialization, resilient loading, and
//! canonical replay ordering for the `crowd-serve` incremental pipeline.
//!
//! The paper's dataset is a *post-hoc* export; a live marketplace instead
//! emits an event feed — batches get posted, instances get picked up, and
//! completions arrive whenever workers submit. This module defines that
//! feed as a typed [`MarketEvent`] stream with a CSV wire format, plus a
//! loader that applies the same resilience discipline as the table loader
//! in [`crate::loader`]:
//!
//! - transient IO errors are retried with bounded backoff;
//! - malformed / dangling / semantically invalid records are quarantined
//!   under the [`ErrorBudget`], never silently dropped;
//! - byte-identical replayed records are deduplicated (counted, not
//!   quarantined);
//! - out-of-order arrivals are restored to the *canonical event order*
//!   `(event time, kind, sequence number)` and the number of repaired
//!   inversions is reported;
//! - an optional digest trailer (`T,<n>,<hex>`) proves the recovered
//!   stream identical to what the producer emitted — the digest is an
//!   order-invariant, duplicate-sensitive sum of per-record hashes, so a
//!   reordered or replayed stream verifies once restored while a dropped
//!   or altered record does not.
//!
//! Wire format (header `kind,seq,payload`):
//!
//! ```text
//! P,<seq>,<batch>                                  batch posted
//! U,<seq>,<batch>,<worker>,<at-secs>               instance picked up
//! C,<seq>,<batch>,<item>,<worker>,<start>,<end>,<trust>,<answer>
//! T,<n>,<digest-hex>                               trailer (optional)
//! ```
//!
//! `Completed` payloads reuse the canonical `instances` record layout from
//! [`crowd_core::csv`], so a completed event carries exactly the row that
//! lands in [`InstanceColumns`] — the `crowd-serve` delta path feeds these
//! rows straight into a `FusedView`.

use std::cmp::Ordering;
use std::fmt;
use std::io::Read;
use std::sync::Arc;

use crowd_core::csv::{self, record_hash};
use crowd_core::dataset::{Dataset, InstanceColumns, TaskInstance};
use crowd_core::error::{CoreError, FaultClass};
use crowd_core::provenance::{ErrorBudget, QuarantinedRow, TableReport, QUARANTINE_DETAIL_CAP};
use crowd_core::{BatchId, InstanceId, Timestamp, WorkerId};

use crate::retry::{read_all_with_retry, Backoff, Clock, SystemClock};

/// Table name events are reported and quarantined under.
pub const EVENTS_TABLE: &str = "events";

/// Expected header line of an event stream.
pub const EVENTS_HEADER: &str = "kind,seq,payload";

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One timestamped marketplace event.
///
/// `seq` is the producer-assigned sequence number; it breaks ties between
/// events that share a timestamp and kind, making the canonical order total
/// and replay deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketEvent {
    /// A requester posted a batch. The event time is the batch's creation
    /// timestamp (resolved against the entity tables at load).
    Posted {
        /// Producer sequence number.
        seq: u64,
        /// The posted batch.
        batch: BatchId,
    },
    /// A worker picked up an instance from a batch.
    PickedUp {
        /// Producer sequence number.
        seq: u64,
        /// The batch the instance belongs to.
        batch: BatchId,
        /// The worker who picked it up.
        worker: WorkerId,
        /// When the pickup happened.
        at: Timestamp,
    },
    /// A worker submitted a completed instance. The payload is the full
    /// canonical instance row; the event time is its submission time.
    Completed {
        /// Producer sequence number.
        seq: u64,
        /// The completed instance row.
        row: TaskInstance,
    },
}

impl MarketEvent {
    /// The producer sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            MarketEvent::Posted { seq, .. }
            | MarketEvent::PickedUp { seq, .. }
            | MarketEvent::Completed { seq, .. } => *seq,
        }
    }

    /// Canonical kind rank: posted < picked-up < completed at equal times.
    fn kind_rank(&self) -> u8 {
        match self {
            MarketEvent::Posted { .. } => 0,
            MarketEvent::PickedUp { .. } => 1,
            MarketEvent::Completed { .. } => 2,
        }
    }

    /// The event's timestamp, resolving `Posted` against the batch table.
    ///
    /// Panics if a `Posted` batch id is out of range — the loader
    /// quarantines dangling ids before ordering, so this only fires on
    /// hand-built events.
    pub fn at(&self, entities: &Dataset) -> Timestamp {
        match self {
            MarketEvent::Posted { batch, .. } => entities.batch(*batch).created_at,
            MarketEvent::PickedUp { at, .. } => *at,
            MarketEvent::Completed { row, .. } => row.end,
        }
    }

    /// Appends the event's canonical serialization (one CSV record plus
    /// newline) to `out`.
    pub fn serialize(&self, out: &mut String) {
        use fmt::Write;
        match self {
            MarketEvent::Posted { seq, batch } => {
                let _ = writeln!(out, "P,{seq},{}", batch.raw());
            }
            MarketEvent::PickedUp { seq, batch, worker, at } => {
                let _ = writeln!(out, "U,{seq},{},{},{}", batch.raw(), worker.raw(), at.as_secs());
            }
            MarketEvent::Completed { seq, row } => {
                let _ = write!(out, "C,{seq},");
                csv::instance_record(
                    crowd_core::dataset::InstanceRef {
                        batch: row.batch,
                        item: row.item,
                        worker: row.worker,
                        start: row.start,
                        end: row.end,
                        trust: row.trust,
                        answer: &row.answer,
                    },
                    out,
                );
            }
        }
    }

    fn canon(&self) -> String {
        let mut s = String::new();
        self.serialize(&mut s);
        s
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of an event-stream load.
#[derive(Debug)]
pub enum EventStreamError {
    /// The underlying read failed (transient retries exhausted, or a
    /// non-transient IO error) or the quarantine budget was exceeded —
    /// carries the typed [`CoreError`] and the report accumulated so far.
    Failed {
        /// The underlying error.
        error: CoreError,
        /// Load state at the point of failure.
        report: TableReport,
    },
    /// The stream's first record was not the `kind,seq,payload` header.
    MissingHeader {
        /// What the first record actually was.
        got: String,
    },
    /// The trailer digest did not cover the recovered stream: a record was
    /// dropped, altered, or fabricated (reordering and duplication alone
    /// cannot trigger this — the digest is order-invariant and replays are
    /// deduplicated first).
    DigestMismatch {
        /// Record count the producer wrote.
        expected_rows: u64,
        /// Records the loader accepted.
        rows: u64,
        /// Digest the producer wrote.
        expected: u64,
        /// Digest over the accepted records.
        actual: u64,
    },
}

impl fmt::Display for EventStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventStreamError::Failed { error, .. } => {
                write!(f, "event stream load failed: {error}")
            }
            EventStreamError::MissingHeader { got } => {
                write!(f, "event stream: expected header `{EVENTS_HEADER}`, got `{got}`")
            }
            EventStreamError::DigestMismatch { expected_rows, rows, expected, actual } => write!(
                f,
                "event stream digest mismatch: trailer covers {expected_rows} records \
                 (digest {expected:016x}), recovered {rows} (digest {actual:016x})"
            ),
        }
    }
}

impl std::error::Error for EventStreamError {}

// ---------------------------------------------------------------------------
// Loaded log
// ---------------------------------------------------------------------------

/// A recovered event stream in canonical order, with full provenance.
#[derive(Debug, Clone)]
pub struct EventLog {
    /// Events in canonical `(time, kind, seq)` order.
    pub events: Vec<MarketEvent>,
    /// Accept/repair/dedup/quarantine accounting for the stream.
    pub report: TableReport,
    /// Detail on quarantined records (capped at
    /// [`QUARANTINE_DETAIL_CAP`]; the report counts stay exact).
    pub quarantine: Vec<QuarantinedRow>,
}

impl EventLog {
    /// The completed-instance rows, in canonical event order — the delta
    /// feed for an incremental `FusedView`.
    pub fn completed_rows(&self) -> InstanceColumns {
        let mut cols = InstanceColumns::default();
        for ev in &self.events {
            if let MarketEvent::Completed { row, .. } = ev {
                cols.push(row.clone());
            }
        }
        cols
    }

    /// Number of `Posted` events.
    pub fn n_posted(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, MarketEvent::Posted { .. })).count()
    }

    /// Number of `PickedUp` events.
    pub fn n_picked(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, MarketEvent::PickedUp { .. })).count()
    }

    /// Number of `Completed` events.
    pub fn n_completed(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, MarketEvent::Completed { .. })).count()
    }
}

// ---------------------------------------------------------------------------
// Producer side
// ---------------------------------------------------------------------------

/// Derives the event stream a live marketplace would have emitted while
/// producing `ds`: one `Posted` per batch, one `PickedUp` + one `Completed`
/// per instance. Sequence numbers are assigned in table order (batches
/// first), so the canonical event order is reproducible from the dataset
/// alone.
pub fn events_from_dataset(ds: &Dataset) -> Vec<MarketEvent> {
    let n_batches = ds.batches.len() as u64;
    let mut events = Vec::with_capacity(ds.batches.len() + 2 * ds.instances.len());
    for i in 0..ds.batches.len() {
        events.push(MarketEvent::Posted { seq: i as u64, batch: BatchId::from_usize(i) });
    }
    for i in 0..ds.instances.len() {
        let row = ds.instance(InstanceId::from_usize(i)).to_owned();
        events.push(MarketEvent::PickedUp {
            seq: n_batches + 2 * i as u64,
            batch: row.batch,
            worker: row.worker,
            at: row.start,
        });
        events.push(MarketEvent::Completed { seq: n_batches + 2 * i as u64 + 1, row });
    }
    events
}

/// Serializes events to the wire format: header, one record per event in
/// the given order, and the digest trailer.
pub fn event_log_to_csv(events: &[MarketEvent]) -> String {
    let mut out = String::with_capacity(64 * events.len() + 64);
    out.push_str(EVENTS_HEADER);
    out.push('\n');
    let mut digest = 0u64;
    for ev in events {
        let start = out.len();
        ev.serialize(&mut out);
        digest = digest.wrapping_add(record_hash(&out[start..]));
    }
    use fmt::Write;
    let _ = writeln!(out, "T,{},{digest:016x}", events.len());
    out
}

// ---------------------------------------------------------------------------
// Consumer side
// ---------------------------------------------------------------------------

/// Knobs for one event-stream load.
#[derive(Clone)]
pub struct EventOptions {
    /// Quarantine budget for the stream.
    pub budget: ErrorBudget,
    /// Retry policy for transient IO errors.
    pub backoff: Backoff,
    /// Clock backing the backoff sleeps (inject [`crate::ManualClock`] in
    /// tests for zero wall-clock time).
    pub clock: Arc<dyn Clock>,
}

impl Default for EventOptions {
    fn default() -> EventOptions {
        EventOptions {
            budget: ErrorBudget::default(),
            backoff: Backoff::default(),
            clock: Arc::new(SystemClock),
        }
    }
}

impl fmt::Debug for EventOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventOptions")
            .field("budget", &self.budget)
            .field("backoff", &self.backoff)
            .finish_non_exhaustive()
    }
}

struct Trailer {
    line: usize,
    n: u64,
    digest: u64,
}

/// Loads an event stream from `reader`, recovering what the resilience
/// machinery can and reporting the rest.
///
/// `entities` supplies the already-loaded entity tables: dangling batch /
/// worker references are quarantined against them, and `Posted` events take
/// their timestamp from the batch table. Instance rows referenced by
/// `Completed` events are validated with the same semantic rules as the
/// table loader (non-negative duration, trust in `[0, 1]`).
pub fn load_events(
    reader: &mut dyn Read,
    entities: &Dataset,
    opts: &EventOptions,
) -> Result<EventLog, EventStreamError> {
    let mut report = TableReport::new(EVENTS_TABLE);
    let mut qlog = Vec::new();

    let (bytes, retries) =
        read_all_with_retry(reader, EVENTS_TABLE, &opts.backoff, opts.clock.as_ref())
            .map_err(|error| EventStreamError::Failed { error, report: report.clone() })?;
    report.retries = retries;
    let text = String::from_utf8_lossy(&bytes);

    let mut records = csv::parse_records_lossy(&text);
    match records.next() {
        Some(Ok((_, f))) if f.join(",") == EVENTS_HEADER => {}
        Some(Ok((_, f))) => return Err(EventStreamError::MissingHeader { got: f.join(",") }),
        Some(Err(e)) => return Err(EventStreamError::MissingHeader { got: e.to_string() }),
        None => return Err(EventStreamError::MissingHeader { got: String::new() }),
    }

    // Parse + validate, quarantining under budget. Keyed: (at, rank, seq).
    let mut keyed: Vec<(i64, u8, u64, MarketEvent)> = Vec::new();
    let mut trailer: Option<Trailer> = None;
    for rec in records {
        let (line, f) = match rec {
            Ok(r) => r,
            Err(e) => {
                quarantine(
                    &mut report,
                    &mut qlog,
                    opts.budget,
                    line_of(&e),
                    FaultClass::Malformed,
                    e.to_string(),
                )?;
                continue;
            }
        };
        match parse_event(&f, line, entities) {
            Ok(Parsed::Event(ev)) => {
                let at = ev.at(entities).as_secs();
                keyed.push((at, ev.kind_rank(), ev.seq(), ev));
            }
            Ok(Parsed::Trailer(t)) => trailer = Some(t),
            Err((fault, message)) => {
                quarantine(&mut report, &mut qlog, opts.budget, line, fault, message)?;
            }
        }
    }

    // Restore canonical order, counting the inversions the sort repairs.
    // Ties beyond (at, kind, seq) break on the serialized record so equal
    // keys with different payloads still order deterministically.
    let key_cmp = |a: &(i64, u8, u64, MarketEvent), b: &(i64, u8, u64, MarketEvent)| {
        (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)).then_with(|| a.3.canon().cmp(&b.3.canon()))
    };
    report.repaired =
        keyed.windows(2).filter(|w| key_cmp(&w[0], &w[1]) == Ordering::Greater).count() as u64;
    keyed.sort_by(key_cmp);

    // Dedup byte-identical replays (adjacent after the sort) and fold the
    // content digest over what remains.
    let mut events = Vec::with_capacity(keyed.len());
    let mut digest = 0u64;
    let mut last_canon: Option<String> = None;
    for (_, _, _, ev) in keyed {
        let canon = ev.canon();
        if last_canon.as_deref() == Some(canon.as_str()) {
            report.deduped += 1;
            continue;
        }
        digest = digest.wrapping_add(record_hash(&canon));
        last_canon = Some(canon);
        events.push(ev);
    }
    report.accepted = events.len() as u64;

    // Trailer verification: with a clean quarantine the recovered stream
    // must be provably identical to what the producer emitted; with
    // quarantined records it provably is not, so record `Some(false)`
    // rather than failing a load that already reported its losses.
    if let Some(t) = trailer {
        let matches = t.n == report.accepted && t.digest == digest;
        if !matches && report.quarantined == 0 {
            return Err(EventStreamError::DigestMismatch {
                expected_rows: t.n,
                rows: report.accepted,
                expected: t.digest,
                actual: digest,
            });
        }
        let _ = t.line;
        report.verified = Some(matches);
    }

    Ok(EventLog { events, report, quarantine: qlog })
}

/// Loads an event stream from a CSV string with default options.
pub fn load_events_str(text: &str, entities: &Dataset) -> Result<EventLog, EventStreamError> {
    load_events(&mut text.as_bytes(), entities, &EventOptions::default())
}

enum Parsed {
    Event(MarketEvent),
    Trailer(Trailer),
}

/// Parses one wire-format event record (no trailer allowed) — the WAL
/// replay path decodes checksummed payloads through the same grammar the
/// stream loader uses, so a WAL record can never smuggle in an event the
/// ingest path would have rejected.
pub(crate) fn parse_wire_event(
    f: &[String],
    line: usize,
    entities: &Dataset,
) -> Result<MarketEvent, String> {
    match parse_event(f, line, entities) {
        Ok(Parsed::Event(ev)) => Ok(ev),
        Ok(Parsed::Trailer(_)) => Err("trailer record inside a WAL payload".into()),
        Err((fault, message)) => Err(format!("{fault:?}: {message}")),
    }
}

fn parse_event(
    f: &[String],
    line: usize,
    entities: &Dataset,
) -> Result<Parsed, (FaultClass, String)> {
    if f.len() == 1 && f[0].is_empty() {
        return Err((FaultClass::Malformed, "blank record".into()));
    }
    let arity = |want: usize| {
        if f.len() == want {
            Ok(())
        } else {
            Err((FaultClass::Arity, format!("expected {want} fields, got {}", f.len())))
        }
    };
    let num = |field: &str, what: &str| -> Result<u64, (FaultClass, String)> {
        field.parse::<u64>().map_err(|_| (FaultClass::Numeric, format!("bad {what} `{field}`")))
    };
    let batch_in_range = |raw: u64| -> Result<BatchId, (FaultClass, String)> {
        if (raw as usize) < entities.batches.len() {
            Ok(BatchId::new(raw as u32))
        } else {
            Err((FaultClass::Dangling, format!("batch b{raw} out of range")))
        }
    };
    match f[0].as_str() {
        "P" => {
            arity(3)?;
            let seq = num(&f[1], "seq")?;
            let batch = batch_in_range(num(&f[2], "batch id")?)?;
            Ok(Parsed::Event(MarketEvent::Posted { seq, batch }))
        }
        "U" => {
            arity(5)?;
            let seq = num(&f[1], "seq")?;
            let batch = batch_in_range(num(&f[2], "batch id")?)?;
            let worker_raw = num(&f[3], "worker id")?;
            if worker_raw as usize >= entities.workers.len() {
                return Err((FaultClass::Dangling, format!("worker w{worker_raw} out of range")));
            }
            let at: i64 = f[4]
                .parse()
                .map_err(|_| (FaultClass::Numeric, format!("bad pickup time `{}`", f[4])))?;
            Ok(Parsed::Event(MarketEvent::PickedUp {
                seq,
                batch,
                worker: WorkerId::new(worker_raw as u32),
                at: Timestamp::from_secs(at),
            }))
        }
        "C" => {
            arity(9)?;
            let seq = num(&f[1], "seq")?;
            let row = csv::parse_instance_row(&f[2..9], line).map_err(|e| match e {
                CoreError::Csv { message, .. } => (FaultClass::Numeric, message),
                other => (FaultClass::Numeric, other.to_string()),
            })?;
            validate_completed(&row, entities)?;
            Ok(Parsed::Event(MarketEvent::Completed { seq, row }))
        }
        "T" => {
            arity(3)?;
            let n = num(&f[1], "trailer count")?;
            let digest = u64::from_str_radix(&f[2], 16)
                .map_err(|_| (FaultClass::Numeric, format!("bad trailer digest `{}`", f[2])))?;
            Ok(Parsed::Trailer(Trailer { line, n, digest }))
        }
        other => Err((FaultClass::Numeric, format!("bad event kind `{other}`"))),
    }
}

fn validate_completed(row: &TaskInstance, entities: &Dataset) -> Result<(), (FaultClass, String)> {
    if row.batch.index() >= entities.batches.len() {
        return Err((FaultClass::Dangling, format!("batch {} out of range", row.batch)));
    }
    if row.worker.index() >= entities.workers.len() {
        return Err((FaultClass::Dangling, format!("worker {} out of range", row.worker)));
    }
    if row.end < row.start {
        return Err((FaultClass::Semantic, "instance ends before it starts".into()));
    }
    if row.trust.is_nan() || !(0.0..=1.0).contains(&row.trust) {
        return Err((FaultClass::Semantic, format!("trust {} outside [0, 1]", row.trust)));
    }
    Ok(())
}

fn line_of(e: &CoreError) -> usize {
    match e {
        CoreError::Csv { line, .. } => *line,
        _ => 0,
    }
}

fn quarantine(
    report: &mut TableReport,
    qlog: &mut Vec<QuarantinedRow>,
    budget: ErrorBudget,
    line: usize,
    fault: FaultClass,
    message: String,
) -> Result<(), EventStreamError> {
    report.quarantined += 1;
    if qlog.len() < QUARANTINE_DETAIL_CAP {
        qlog.push(QuarantinedRow { table: EVENTS_TABLE, line, fault, message });
    }
    if report.quarantined > budget.max_quarantined_per_table {
        return Err(EventStreamError::Failed {
            error: CoreError::BudgetExceeded {
                table: EVENTS_TABLE,
                quarantined: report.quarantined,
                budget: budget.max_quarantined_per_table,
            },
            report: report.clone(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use crate::retry::ManualClock;
    use crate::ChaosReader;
    use crowd_core::fixture::Fixture;
    use crowd_core::Duration;

    fn dataset() -> Dataset {
        let mut fx = Fixture::new();
        let w0 = fx.add_worker();
        let w1 = fx.add_worker();
        let b0 = fx.add_batch(Duration::ZERO);
        let b1 = fx.add_batch(Duration::from_days(2));
        fx.instance(b0, 0, w0, 60, 30);
        fx.instance(b0, 1, w1, 120, 45);
        fx.instance(b1, 0, w0, 30, 20);
        fx.finish()
    }

    #[test]
    fn round_trip_restores_the_event_stream() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let csv_text = event_log_to_csv(&events);
        let log = load_events_str(&csv_text, &ds).expect("clean load");
        assert_eq!(log.report.accepted, events.len() as u64);
        assert_eq!(log.report.quarantined, 0);
        assert_eq!(log.report.verified, Some(true));
        assert_eq!(log.n_posted(), ds.batches.len());
        assert_eq!(log.n_picked(), ds.instances.len());
        assert_eq!(log.n_completed(), ds.instances.len());
        assert_eq!(log.completed_rows().len(), ds.instances.len());
        // Canonical order is a permutation of the producer's events.
        let mut want: Vec<String> = events.iter().map(MarketEvent::canon).collect();
        let mut got: Vec<String> = log.events.iter().map(MarketEvent::canon).collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
    }

    #[test]
    fn shuffled_and_replayed_records_restore_and_verify() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let csv_text = event_log_to_csv(&events);
        let mut lines: Vec<&str> = csv_text.lines().collect();
        let trailer = lines.pop().unwrap();
        // Reverse the records and replay two of them.
        let header = lines.remove(0);
        lines.reverse();
        let dup_a = lines[0];
        let dup_b = lines[lines.len() - 1];
        let mut shuffled = format!("{header}\n");
        for l in &lines {
            shuffled.push_str(l);
            shuffled.push('\n');
        }
        shuffled.push_str(dup_a);
        shuffled.push('\n');
        shuffled.push_str(dup_b);
        shuffled.push('\n');
        shuffled.push_str(trailer);
        shuffled.push('\n');

        let log = load_events_str(&shuffled, &ds).expect("recoverable load");
        assert_eq!(log.report.accepted, events.len() as u64);
        assert_eq!(log.report.deduped, 2);
        assert!(log.report.repaired > 0, "reversed stream must count repairs");
        assert_eq!(log.report.verified, Some(true));

        let clean = load_events_str(&event_log_to_csv(&events), &ds).unwrap();
        assert_eq!(clean.events, log.events);
    }

    #[test]
    fn canonical_order_is_time_then_kind_then_seq() {
        let ds = dataset();
        let log = load_events_str(&event_log_to_csv(&events_from_dataset(&ds)), &ds).unwrap();
        let keys: Vec<(i64, u8, u64)> =
            log.events.iter().map(|e| (e.at(&ds).as_secs(), e.kind_rank(), e.seq())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // The first event is the earliest batch posting.
        assert!(matches!(log.events[0], MarketEvent::Posted { .. }));
    }

    #[test]
    fn bad_records_quarantine_by_class_under_budget() {
        let ds = dataset();
        let mut events = events_from_dataset(&ds);
        events.truncate(3);
        let mut text = event_log_to_csv(&events);
        text.truncate(text.rfind("T,").unwrap()); // drop the trailer
        text.push_str("X,9,0\n"); // unknown kind -> Numeric
        text.push_str("P,10\n"); // wrong arity -> Arity
        text.push_str("P,11,99\n"); // dangling batch -> Dangling
        text.push_str("U,12,0,99,1000\n"); // dangling worker -> Dangling
        text.push_str("C,13,0,0,0,2000,1000,0.5,S\n"); // ends before start -> Semantic
        text.push_str("C,14,0,0,0,1000,2000,1.5,S\n"); // trust out of range -> Semantic
        text.push('\n'); // blank -> Malformed

        let log = load_events_str(&text, &ds).expect("within budget");
        assert_eq!(log.report.accepted, 3);
        assert_eq!(log.report.quarantined, 7);
        assert_eq!(log.report.verified, None);
        let classes: Vec<FaultClass> = log.quarantine.iter().map(|q| q.fault).collect();
        assert_eq!(
            classes,
            vec![
                FaultClass::Numeric,
                FaultClass::Arity,
                FaultClass::Dangling,
                FaultClass::Dangling,
                FaultClass::Semantic,
                FaultClass::Semantic,
                FaultClass::Malformed,
            ]
        );

        let tight = EventOptions {
            budget: ErrorBudget { max_quarantined_per_table: 2 },
            ..Default::default()
        };
        let err = load_events(&mut text.as_bytes(), &ds, &tight).unwrap_err();
        match err {
            EventStreamError::Failed {
                error: CoreError::BudgetExceeded { quarantined, budget, .. },
                ..
            } => {
                assert_eq!((quarantined, budget), (3, 2));
            }
            other => panic!("expected budget failure, got {other}"),
        }
    }

    #[test]
    fn altered_record_fails_the_digest() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        // Nudge the trust fields: every record still parses and validates,
        // but the content no longer matches what the producer hashed.
        let csv_text = event_log_to_csv(&events).replace(",0.9,", ",0.8,");
        assert_ne!(csv_text, event_log_to_csv(&events), "fixture must contain the pattern");
        let err = load_events_str(&csv_text, &ds).unwrap_err();
        assert!(
            matches!(err, EventStreamError::DigestMismatch { .. }),
            "expected digest mismatch, got {err}"
        );
    }

    #[test]
    fn dropped_record_fails_the_digest_row_count() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let csv_text = event_log_to_csv(&events);
        let mut lines: Vec<&str> = csv_text.lines().collect();
        lines.remove(2); // drop one record, keep header + trailer
        let text = lines.join("\n") + "\n";
        let err = load_events_str(&text, &ds).unwrap_err();
        match err {
            EventStreamError::DigestMismatch { expected_rows, rows, .. } => {
                assert_eq!(expected_rows, events.len() as u64);
                assert_eq!(rows, events.len() as u64 - 1);
            }
            other => panic!("expected digest mismatch, got {other}"),
        }
    }

    #[test]
    fn missing_header_is_a_typed_error() {
        let ds = dataset();
        let err = load_events_str("P,0,0\n", &ds).unwrap_err();
        assert!(matches!(err, EventStreamError::MissingHeader { .. }));
    }

    #[test]
    fn transient_io_errors_retry_without_wall_clock_sleeps() {
        let ds = dataset();
        let csv_text = event_log_to_csv(&events_from_dataset(&ds));
        let plan =
            FaultPlan::single(Fault::Transient { first_call: 0, times: 2, would_block: false });
        let mut reader = ChaosReader::new(csv_text.as_bytes(), &plan);
        let clock = Arc::new(ManualClock::new());
        let opts = EventOptions {
            backoff: Backoff::default(),
            clock: clock.clone(),
            ..Default::default()
        };
        let log = load_events(&mut reader, &ds, &opts).expect("recovers transient faults");
        assert_eq!(log.report.retries, 2);
        assert_eq!(log.report.verified, Some(true));
        assert!(!clock.slept().is_empty(), "backoff must use the injected clock");
    }
}
