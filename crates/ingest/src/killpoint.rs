//! Kill-point instrumentation for crash-anywhere chaos testing.
//!
//! Durability code paths (WAL appends, fsyncs, segment rotation and
//! retirement, checkpoint temp writes and renames, snapshot publishes)
//! call [`kill_point`] at every boundary where a real crash could land.
//! In normal operation the call is one relaxed atomic increment. When the
//! process is launched with `CROWD_KILL_AT=<n>`, the *n*-th kill point
//! terminates the process on the spot — no unwinding, no destructors, no
//! buffered-write flushing — which is how the `serve_crash` harness
//! proves the recovery path works from *any* instant, not just the
//! convenient ones.
//!
//! Termination prefers a genuine `SIGKILL` (delivered by re-executing
//! `kill -9` against our own pid, so not even signal handlers could
//! interfere) and falls back to [`std::process::abort`] when no `kill`
//! binary is reachable. Both die without cleanup; the distinction never
//! matters to the artifacts left on disk.
//!
//! The counter is process-global and monotone, so a run's kill points
//! form a stable, replayable schedule: the same binary, flags, and seed
//! pass the same points in the same order. The harness first does an
//! uninterrupted run to learn the schedule length (via
//! [`points_passed`], surfaced by the serve binary under
//! `CROWD_KILL_REPORT=1`), then replays with `CROWD_KILL_AT` set to
//! seeded positions inside it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable arming the kill switch: the 1-based kill point
/// at which the process terminates itself.
pub const KILL_AT_ENV: &str = "CROWD_KILL_AT";

static PASSED: AtomicU64 = AtomicU64::new(0);

fn armed_at() -> Option<u64> {
    static ARMED: OnceLock<Option<u64>> = OnceLock::new();
    *ARMED.get_or_init(|| {
        std::env::var(KILL_AT_ENV).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
    })
}

/// Marks a crash-relevant boundary. Increments the process-global kill
/// point counter; if `CROWD_KILL_AT` arms exactly this point, the
/// process dies here without any cleanup.
pub fn kill_point(name: &str) {
    let n = PASSED.fetch_add(1, Ordering::Relaxed) + 1;
    if armed_at() == Some(n) {
        // Flushes nothing on purpose: stderr is unbuffered, and the whole
        // point is that no other state gets a chance to be flushed.
        eprintln!("[killpoint] dying at point {n} ({name})");
        die();
    }
}

/// How many kill points this process has passed so far.
pub fn points_passed() -> u64 {
    PASSED.load(Ordering::Relaxed)
}

fn die() -> ! {
    let pid = std::process::id().to_string();
    for kill in ["/bin/kill", "/usr/bin/kill", "kill"] {
        if let Ok(mut child) = std::process::Command::new(kill).args(["-9", &pid]).spawn() {
            let _ = child.wait();
            // SIGKILL delivery can race the wait; give it a beat.
            std::thread::sleep(std::time::Duration::from_secs(2));
        }
    }
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_kill_points_only_count() {
        // The test process never sets CROWD_KILL_AT, so passing points is
        // observable and harmless.
        let before = points_passed();
        kill_point("test.a");
        kill_point("test.b");
        assert!(points_passed() >= before + 2);
    }
}
