//! Durable write-ahead event log for the live service.
//!
//! The checkpoint path (`crowd-serve`) persists a full service state every
//! N events; everything applied *since* the newest checkpoint used to be
//! lost on a crash. The WAL closes that hole: every event batch is
//! serialized, checksummed, and appended to a rotating segment file
//! **before** the service folds it into the live view. On restart,
//! recovery loads the newest checkpoint and replays the WAL tail past it,
//! so an accepted event survives the process dying at any instant.
//!
//! On-disk format, all little-endian:
//!
//! ```text
//! segment file  wal-<stream:016x>-<start_seq:020>.log
//!   header (32 bytes)
//!     magic "CRWDWAL1" | stream_id u64 | start_seq u64 | fnv64 of the first 24 bytes
//!   records, back to back
//!     len u32 | n_events u32 | seq_base u64 | fnv64 checksum | payload [len bytes]
//! ```
//!
//! The payload is the batch's events in the canonical CSV wire format
//! (one record per line, same grammar as `events.csv`); the checksum
//! covers the header fields *and* the payload, so a bit flip anywhere in
//! a record is detected. `seq_base` is the stream-wide event ordinal of
//! the batch's first event — replay verifies the ordinals chain without
//! gaps, and a restore skips records a checkpoint already covers (slicing
//! the one batch that straddles the checkpoint boundary).
//!
//! Fsync is batched: `WalOptions::fsync_every` appends share one
//! `sync_all`. A crash of the *process* loses nothing regardless — the
//! page cache survives `SIGKILL` — so the batching knob only trades
//! durability against whole-machine failure for append throughput.
//!
//! Recovery is honest about damage, mirroring the §14 `FaultClass`
//! discipline: a record cut off by the end of the log is a
//! [`WalFault::TornTail`] — the expected artifact of dying mid-append —
//! and recovery truncates it away and continues. A record whose bytes are
//! all present but fail validation (bit flip, mangled length field,
//! broken ordinal chain) is [`WalFault::Corrupt`]/[`WalFault::SeqGap`]:
//! that is damage no crash produces, so replay refuses to serve past it
//! and surfaces the typed fault instead of guessing. Nothing in this
//! module panics on untrusted bytes (`wal_fuzz.rs` holds it to that).
//!
//! Segments are *retired* (deleted) once a checkpoint covers every event
//! they hold, bounding disk to roughly one checkpoint interval of events
//! plus the active segment.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crowd_core::csv::parse_records_lossy;
use crowd_core::dataset::Dataset;

use crate::events::{parse_wire_event, MarketEvent};
use crate::killpoint::kill_point;

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"CRWDWAL1";

/// Segment header size: magic + stream id + start seq + checksum.
const SEG_HEADER_LEN: u64 = 32;

/// Record header size: len + n_events + seq_base + checksum.
const REC_HEADER_LEN: u64 = 24;

/// Sanity bound on one record's payload. A length field claiming more
/// than this is corruption, not a large batch.
const MAX_RECORD_LEN: u32 = 1 << 26;

/// FNV-1a over bytes. Single-byte changes always change the hash: each
/// step is a bijection of the running state for a fixed input byte, so
/// differing states never re-converge.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn record_checksum(len: u32, n_events: u32, seq_base: u64, payload: &[u8]) -> u64 {
    let mut head = [0u8; 16];
    head[..4].copy_from_slice(&len.to_le_bytes());
    head[4..8].copy_from_slice(&n_events.to_le_bytes());
    head[8..16].copy_from_slice(&seq_base.to_le_bytes());
    let mut h = fnv1a(&head);
    // Continue the same FNV stream over the payload.
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Faults and errors
// ---------------------------------------------------------------------------

/// What exactly was wrong with an unreadable piece of the log —
/// the WAL counterpart of §14's `FaultClass`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalCorruptKind {
    /// Segment header magic bytes are wrong.
    Magic,
    /// Segment header checksum mismatch.
    HeaderChecksum,
    /// Segment belongs to a different event stream.
    StreamMismatch,
    /// Record length field is absurd or inconsistent.
    Length,
    /// Record checksum mismatch (bit flip in header or payload).
    RecordChecksum,
    /// Checksummed payload failed to decode back into events.
    Decode,
    /// A structurally valid piece appeared where the crash model cannot
    /// produce one (for example a torn-shaped hole before later segments).
    Order,
}

impl fmt::Display for WalCorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WalCorruptKind::Magic => "bad magic",
            WalCorruptKind::HeaderChecksum => "header checksum mismatch",
            WalCorruptKind::StreamMismatch => "stream id mismatch",
            WalCorruptKind::Length => "bad record length",
            WalCorruptKind::RecordChecksum => "record checksum mismatch",
            WalCorruptKind::Decode => "payload decode failure",
            WalCorruptKind::Order => "ordering violation",
        };
        f.write_str(s)
    }
}

/// Typed damage found while replaying a WAL.
#[derive(Debug)]
pub enum WalFault {
    /// The log ends inside a record (or inside the final segment's
    /// header): the normal artifact of a crash mid-append. `offset` is
    /// the last valid record boundary — recovery truncates the segment
    /// there and loses only the batch whose append never returned.
    TornTail {
        /// The torn segment.
        segment: PathBuf,
        /// Last valid record boundary (byte offset in the segment).
        offset: u64,
    },
    /// Bytes are fully present but fail validation — a bit flip or
    /// external mangling, which no crash produces. Replay refuses to
    /// serve anything past this point.
    Corrupt {
        /// The damaged segment.
        segment: PathBuf,
        /// Byte offset of the damaged header or record.
        offset: u64,
        /// What failed.
        kind: WalCorruptKind,
        /// Human-readable detail.
        message: String,
    },
    /// The surviving segments do not cover the requested replay start —
    /// events between `expected` and `got` are unrecoverable.
    SeqGap {
        /// First event ordinal the caller needs.
        expected: u64,
        /// First ordinal the log actually covers from there.
        got: u64,
    },
}

impl WalFault {
    /// Whether this fault is the benign crash artifact (a torn tail) that
    /// recovery may truncate and step past. Everything else must refuse.
    pub fn is_torn_tail(&self) -> bool {
        matches!(self, WalFault::TornTail { .. })
    }
}

impl fmt::Display for WalFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalFault::TornTail { segment, offset } => {
                write!(f, "torn tail in {} at byte {offset}", segment.display())
            }
            WalFault::Corrupt { segment, offset, kind, message } => {
                write!(f, "corrupt WAL {} at byte {offset}: {kind} ({message})", segment.display())
            }
            WalFault::SeqGap { expected, got } => {
                write!(f, "WAL sequence gap: need events from {expected}, log starts at {got}")
            }
        }
    }
}

/// Filesystem failure of a WAL operation.
#[derive(Debug)]
pub struct WalError {
    /// The file or directory involved.
    pub path: PathBuf,
    /// The underlying IO error.
    pub error: io::Error,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wal io on {}: {}", self.path.display(), self.error)
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path) -> impl FnOnce(io::Error) -> WalError + '_ {
    move |error| WalError { path: path.to_path_buf(), error }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Durability knobs for a [`WalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Appends per `fsync` (1 = sync every batch before it is applied;
    /// larger values batch the sync and only risk data on whole-machine
    /// failure, never on process death).
    pub fsync_every: u64,
    /// Rotate to a fresh segment once the active one exceeds this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions { fsync_every: 1, segment_bytes: 4 << 20 }
    }
}

/// Monotone writer-side counters, surfaced through the service gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Record appends.
    pub appends: u64,
    /// `sync_all` calls issued.
    pub fsyncs: u64,
    /// Segment rotations (including the first segment).
    pub rotations: u64,
    /// Payload + header bytes written.
    pub bytes_written: u64,
    /// Segments deleted by [`WalWriter::retire_through`].
    pub segments_retired: u64,
}

struct ActiveSegment {
    path: PathBuf,
    file: fs::File,
    bytes: u64,
}

/// Appending side of the log: owns the active segment, rotates and
/// retires segments, batches fsync.
pub struct WalWriter {
    dir: PathBuf,
    stream_id: u64,
    opts: WalOptions,
    next_seq: u64,
    active: Option<ActiveSegment>,
    unsynced: u64,
    stats: WalStats,
}

impl WalWriter {
    /// Opens a writer for `stream_id` under `dir`, with the next append
    /// carrying event ordinal `next_seq`. The directory is created; the
    /// first segment is created lazily on the first append (so a restore
    /// that never applies new events leaves no empty segment behind).
    pub fn open(
        dir: impl Into<PathBuf>,
        stream_id: u64,
        opts: WalOptions,
        next_seq: u64,
    ) -> Result<WalWriter, WalError> {
        assert!(opts.fsync_every > 0, "fsync_every must be positive");
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        Ok(WalWriter {
            dir,
            stream_id,
            opts,
            next_seq,
            active: None,
            unsynced: 0,
            stats: WalStats::default(),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stream this log belongs to.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Event ordinal the next appended batch starts at.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Writer-side counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // Close out the old segment durably before abandoning it: closed
        // segments are never re-synced, so this is their last chance.
        self.sync()?;
        let path = segment_path(&self.dir, self.stream_id, self.next_seq);
        let file = fs::File::create(&path).map_err(io_err(&path))?;
        let mut header = Vec::with_capacity(SEG_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&self.stream_id.to_le_bytes());
        header.extend_from_slice(&self.next_seq.to_le_bytes());
        header.extend_from_slice(&fnv1a(&header).to_le_bytes());
        let mut active = ActiveSegment { path, file, bytes: SEG_HEADER_LEN };
        active.file.write_all(&header).map_err(io_err(&active.path))?;
        self.stats.rotations += 1;
        self.stats.bytes_written += SEG_HEADER_LEN;
        self.active = Some(active);
        kill_point("wal.rotate");
        Ok(())
    }

    /// Appends one event batch. The record is on disk (modulo fsync
    /// batching) when this returns — callers apply the batch to live
    /// state only afterwards. Empty batches are a no-op: heartbeat
    /// publishes carry no state worth logging.
    pub fn append(&mut self, events: &[MarketEvent]) -> Result<(), WalError> {
        if events.is_empty() {
            return Ok(());
        }
        if self.active.as_ref().is_none_or(|a| a.bytes >= self.opts.segment_bytes) {
            self.rotate()?;
        }
        let mut payload = String::with_capacity(64 * events.len());
        for ev in events {
            ev.serialize(&mut payload);
        }
        let payload = payload.as_bytes();
        let len = u32::try_from(payload.len()).expect("batch payload exceeds u32");
        assert!(len <= MAX_RECORD_LEN, "batch payload exceeds the WAL record bound");
        let n_events = u32::try_from(events.len()).expect("batch exceeds u32 events");
        let seq_base = self.next_seq;
        let sum = record_checksum(len, n_events, seq_base, payload);
        let mut header = [0u8; REC_HEADER_LEN as usize];
        header[..4].copy_from_slice(&len.to_le_bytes());
        header[4..8].copy_from_slice(&n_events.to_le_bytes());
        header[8..16].copy_from_slice(&seq_base.to_le_bytes());
        header[16..24].copy_from_slice(&sum.to_le_bytes());

        let active = self.active.as_mut().expect("rotate() installed a segment");
        active.file.write_all(&header).map_err(io_err(&active.path))?;
        // A crash here leaves a header with no payload: the torn-tail
        // shape recovery truncates away.
        kill_point("wal.append.torn");
        active.file.write_all(payload).map_err(io_err(&active.path))?;
        active.bytes += REC_HEADER_LEN + u64::from(len);
        self.stats.appends += 1;
        self.stats.bytes_written += REC_HEADER_LEN + u64::from(len);
        self.next_seq += events.len() as u64;
        self.unsynced += 1;
        if self.unsynced >= self.opts.fsync_every {
            self.sync()?;
        }
        kill_point("wal.append");
        Ok(())
    }

    /// Flushes any unsynced appends to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let active = self.active.as_mut().expect("unsynced implies an active segment");
        active.file.sync_all().map_err(io_err(&active.path))?;
        self.stats.fsyncs += 1;
        self.unsynced = 0;
        kill_point("wal.fsync");
        Ok(())
    }

    /// Deletes every *closed* segment fully covered by a checkpoint at
    /// event ordinal `through_seq` (exclusive upper bound on applied
    /// events). The active segment survives even when covered. Returns
    /// how many segments were removed.
    pub fn retire_through(&mut self, through_seq: u64) -> Result<u64, WalError> {
        let files = segment_files(&self.dir, self.stream_id).map_err(io_err(&self.dir))?;
        let mut removed = 0;
        for pair in files.windows(2) {
            let (_, ref path) = pair[0];
            let (next_start, _) = pair[1];
            let is_active = self.active.as_ref().is_some_and(|a| a.path == *path);
            if next_start <= through_seq && !is_active {
                fs::remove_file(path).map_err(io_err(path))?;
                removed += 1;
                self.stats.segments_retired += 1;
                kill_point("wal.retire");
            }
        }
        Ok(removed)
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Outcome of a [`replay`]: the recovered tail, where it ends, and the
/// first fault (if any) that stopped the scan.
#[derive(Debug)]
pub struct WalReplay {
    /// Events with ordinal ≥ the requested `from_seq`, in log order.
    pub events: Vec<MarketEvent>,
    /// One past the last event ordinal the valid log covers (never below
    /// the requested `from_seq`).
    pub next_seq: u64,
    /// Valid records scanned, including ones wholly before `from_seq`.
    pub records: u64,
    /// Segment files scanned (fully or partially).
    pub segments: u64,
    /// The fault that stopped the scan, if the log was damaged. When
    /// `Some`, `events` still holds the valid prefix — whether to use it
    /// is the caller's policy ([`WalFault::is_torn_tail`] is the benign
    /// case; everything else should refuse).
    pub fault: Option<WalFault>,
}

/// Segment files for `stream_id` under `dir`, sorted by start ordinal.
pub fn segment_files(dir: &Path, stream_id: u64) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    let prefix = format!("wal-{stream_id:016x}-");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix(&prefix) {
            if let Some(seq) = rest.strip_suffix(".log").and_then(|s| s.parse::<u64>().ok()) {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

fn segment_path(dir: &Path, stream_id: u64, start_seq: u64) -> PathBuf {
    dir.join(format!("wal-{stream_id:016x}-{start_seq:020}.log"))
}

/// Replays the log tail for `stream_id`, returning every event with
/// ordinal ≥ `from_seq` (a checkpoint's `events_applied`). Scans
/// segments in order, verifies every checksum and the ordinal chain, and
/// stops at the first fault — classifying it as a truncatable torn tail
/// or as corruption that must refuse. Never panics on damaged bytes.
pub fn replay(
    dir: &Path,
    stream_id: u64,
    from_seq: u64,
    entities: &Dataset,
) -> Result<WalReplay, WalError> {
    let files = segment_files(dir, stream_id).map_err(io_err(dir))?;
    let mut out =
        WalReplay { events: Vec::new(), next_seq: from_seq, records: 0, segments: 0, fault: None };
    if files.is_empty() {
        return Ok(out);
    }
    if files[0].0 > from_seq {
        out.fault = Some(WalFault::SeqGap { expected: from_seq, got: files[0].0 });
        return Ok(out);
    }
    let mut expected_seq: Option<u64> = None;
    let last = files.len() - 1;
    'segments: for (idx, (start_seq, path)) in files.iter().enumerate() {
        let is_final = idx == last;
        let bytes = fs::read(path).map_err(io_err(path))?;
        out.segments += 1;
        // --- segment header ------------------------------------------------
        if (bytes.len() as u64) < SEG_HEADER_LEN {
            out.fault = Some(if is_final {
                // A crash during segment creation tears the header; the
                // whole file is the tail to truncate.
                WalFault::TornTail { segment: path.clone(), offset: 0 }
            } else {
                WalFault::Corrupt {
                    segment: path.clone(),
                    offset: 0,
                    kind: WalCorruptKind::Order,
                    message: format!(
                        "segment is {} bytes (shorter than its header) yet later segments exist",
                        bytes.len()
                    ),
                }
            });
            break 'segments;
        }
        let corrupt = |offset: u64, kind: WalCorruptKind, message: String| WalFault::Corrupt {
            segment: path.clone(),
            offset,
            kind,
            message,
        };
        if bytes[..8] != WAL_MAGIC {
            out.fault = Some(corrupt(0, WalCorruptKind::Magic, "segment magic".into()));
            break 'segments;
        }
        let u64_at =
            |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("bounds"));
        if fnv1a(&bytes[..24]) != u64_at(24) {
            out.fault = Some(corrupt(0, WalCorruptKind::HeaderChecksum, "segment header".into()));
            break 'segments;
        }
        if u64_at(8) != stream_id {
            out.fault = Some(corrupt(
                0,
                WalCorruptKind::StreamMismatch,
                format!("segment stream {:#x}, expected {stream_id:#x}", u64_at(8)),
            ));
            break 'segments;
        }
        let header_start = u64_at(16);
        if header_start != *start_seq {
            out.fault = Some(corrupt(
                0,
                WalCorruptKind::Order,
                format!("header start {header_start} disagrees with filename {start_seq}"),
            ));
            break 'segments;
        }
        if let Some(expected) = expected_seq {
            if header_start != expected {
                out.fault = Some(if header_start > expected {
                    WalFault::SeqGap { expected, got: header_start }
                } else {
                    corrupt(
                        0,
                        WalCorruptKind::Order,
                        format!("segment restarts at {header_start}, already covered {expected}"),
                    )
                });
                break 'segments;
            }
        }
        let mut seq = header_start;
        // --- records -------------------------------------------------------
        let mut off = SEG_HEADER_LEN;
        let file_len = bytes.len() as u64;
        while off < file_len {
            let rem = file_len - off;
            if rem < REC_HEADER_LEN {
                out.fault = Some(if is_final {
                    WalFault::TornTail { segment: path.clone(), offset: off }
                } else {
                    corrupt(
                        off,
                        WalCorruptKind::Order,
                        "truncated record inside a non-final segment".into(),
                    )
                });
                break 'segments;
            }
            let o = off as usize;
            let len = u32::from_le_bytes(bytes[o..o + 4].try_into().expect("bounds"));
            let n_events = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().expect("bounds"));
            let seq_base = u64::from_le_bytes(bytes[o + 8..o + 16].try_into().expect("bounds"));
            let sum = u64::from_le_bytes(bytes[o + 16..o + 24].try_into().expect("bounds"));
            if len > MAX_RECORD_LEN || n_events == 0 {
                out.fault = Some(corrupt(
                    off,
                    WalCorruptKind::Length,
                    format!("record claims {len} bytes / {n_events} events"),
                ));
                break 'segments;
            }
            if rem < REC_HEADER_LEN + u64::from(len) {
                out.fault = Some(if is_final {
                    WalFault::TornTail { segment: path.clone(), offset: off }
                } else {
                    corrupt(
                        off,
                        WalCorruptKind::Order,
                        "record payload truncated inside a non-final segment".into(),
                    )
                });
                break 'segments;
            }
            let payload =
                &bytes[o + REC_HEADER_LEN as usize..o + (REC_HEADER_LEN + u64::from(len)) as usize];
            if record_checksum(len, n_events, seq_base, payload) != sum {
                out.fault = Some(corrupt(off, WalCorruptKind::RecordChecksum, "record".into()));
                break 'segments;
            }
            if seq_base != seq {
                out.fault = Some(corrupt(
                    off,
                    WalCorruptKind::Order,
                    format!("record seq_base {seq_base}, expected {seq}"),
                ));
                break 'segments;
            }
            let rec_end = seq_base + u64::from(n_events);
            if rec_end > from_seq {
                // Decode the payload; take only the events past from_seq.
                match decode_payload(payload, n_events, entities) {
                    Ok(events) => {
                        let skip = from_seq.saturating_sub(seq_base) as usize;
                        out.events.extend(events.into_iter().skip(skip));
                    }
                    Err(message) => {
                        out.fault = Some(corrupt(off, WalCorruptKind::Decode, message));
                        break 'segments;
                    }
                }
            }
            out.records += 1;
            seq = rec_end;
            out.next_seq = seq.max(from_seq);
            off += REC_HEADER_LEN + u64::from(len);
        }
        expected_seq = Some(seq);
    }
    Ok(out)
}

/// Physically truncates a torn tail at its last valid record boundary.
/// Returns `true` if the fault was a torn tail and the segment was
/// truncated, `false` (doing nothing) for every other fault.
pub fn truncate_torn(fault: &WalFault) -> Result<bool, WalError> {
    let WalFault::TornTail { segment, offset } = fault else { return Ok(false) };
    if *offset == 0 {
        // The tear is inside the segment header: the file holds no
        // records at all (a crash between create and header write), so
        // keeping a zero-length stub would just re-classify as torn on
        // every future replay. Remove it outright.
        fs::remove_file(segment).map_err(io_err(segment))?;
    } else {
        let file = fs::OpenOptions::new().write(true).open(segment).map_err(io_err(segment))?;
        file.set_len(*offset).map_err(io_err(segment))?;
        file.sync_all().map_err(io_err(segment))?;
    }
    kill_point("wal.truncate");
    Ok(true)
}

fn decode_payload(
    payload: &[u8],
    n_events: u32,
    entities: &Dataset,
) -> Result<Vec<MarketEvent>, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
    let mut events = Vec::with_capacity(n_events as usize);
    for rec in parse_records_lossy(text) {
        let (line, f) = rec.map_err(|e| e.to_string())?;
        events.push(parse_wire_event(&f, line, entities)?);
    }
    if events.len() != n_events as usize {
        return Err(format!(
            "payload decodes to {} events, header claims {n_events}",
            events.len()
        ));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::events_from_dataset;
    use crowd_core::fixture::Fixture;
    use crowd_core::Duration;

    fn dataset() -> Dataset {
        let mut fx = Fixture::new();
        let ws = fx.add_workers(3);
        let b0 = fx.add_batch(Duration::ZERO);
        let b1 = fx.add_batch(Duration::from_days(1));
        for (i, &b) in [b0, b1].iter().enumerate() {
            for item in 0..4u32 {
                fx.instance(b, item, ws[(item as usize + i) % 3], 600 + 60 * i64::from(item), 45);
            }
        }
        fx.finish()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Writes `events` in batches of `batch`, forcing rotation with tiny
    /// segments. Returns the writer for further poking.
    fn write_log(dir: &Path, events: &[MarketEvent], batch: usize, opts: WalOptions) -> WalWriter {
        let mut w = WalWriter::open(dir, 0xabc, opts, 0).unwrap();
        for chunk in events.chunks(batch) {
            w.append(chunk).unwrap();
        }
        w.sync().unwrap();
        w
    }

    fn canon_all(events: &[MarketEvent]) -> Vec<String> {
        events
            .iter()
            .map(|e| {
                let mut s = String::new();
                e.serialize(&mut s);
                s
            })
            .collect()
    }

    fn small() -> WalOptions {
        WalOptions { fsync_every: 1, segment_bytes: 256 }
    }

    #[test]
    fn round_trips_across_rotated_segments() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("roundtrip");
        let w = write_log(&dir, &events, 3, small());
        assert!(w.stats().rotations >= 2, "256-byte segments must rotate");
        assert_eq!(w.next_seq(), events.len() as u64);

        let replayed = replay(&dir, 0xabc, 0, &ds).unwrap();
        assert!(replayed.fault.is_none(), "clean log: {:?}", replayed.fault);
        assert_eq!(replayed.next_seq, events.len() as u64);
        assert_eq!(canon_all(&replayed.events), canon_all(&events));
        assert!(replayed.segments >= 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_from_mid_stream_slices_the_straddling_batch() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("slice");
        write_log(&dir, &events, 4, small());
        // from_seq = 6 lands mid-batch (batches are 4 wide).
        let replayed = replay(&dir, 0xabc, 6, &ds).unwrap();
        assert!(replayed.fault.is_none());
        assert_eq!(canon_all(&replayed.events), canon_all(&events[6..]));
        assert_eq!(replayed.next_seq, events.len() as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_the_last_valid_boundary() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("torn");
        // One big segment so the tear lands in the final segment.
        write_log(&dir, &events, 3, WalOptions::default());
        let (_, path) = segment_files(&dir, 0xabc).unwrap().pop().unwrap();
        let pristine = fs::read(&path).unwrap();
        // Tear mid-way through the last record's payload.
        fs::write(&path, &pristine[..pristine.len() - 5]).unwrap();

        let replayed = replay(&dir, 0xabc, 0, &ds).unwrap();
        let fault = replayed.fault.expect("torn log must fault");
        assert!(fault.is_torn_tail(), "expected torn tail, got {fault}");
        let n_prefix = replayed.events.len();
        assert!(n_prefix < events.len() && n_prefix >= events.len() - 3);
        assert_eq!(canon_all(&replayed.events), canon_all(&events[..n_prefix]));

        assert!(truncate_torn(&fault).unwrap());
        let clean = replay(&dir, 0xabc, 0, &ds).unwrap();
        assert!(clean.fault.is_none(), "truncated log must replay clean: {:?}", clean.fault);
        assert_eq!(clean.events.len(), n_prefix);
        assert_eq!(clean.next_seq, n_prefix as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_is_corrupt_not_torn_and_stops_replay() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("flip");
        write_log(&dir, &events, 3, small());
        let files = segment_files(&dir, 0xabc).unwrap();
        assert!(files.len() >= 2);
        // Flip one payload byte in the FIRST segment: all bytes present,
        // later segments valid — must refuse, not truncate.
        let (_, first) = &files[0];
        let mut bytes = fs::read(first).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40;
        fs::write(first, &bytes).unwrap();

        let replayed = replay(&dir, 0xabc, 0, &ds).unwrap();
        let fault = replayed.fault.expect("bit flip must fault");
        assert!(!fault.is_torn_tail(), "bit flip is not a torn tail: {fault}");
        assert!(matches!(fault, WalFault::Corrupt { kind: WalCorruptKind::RecordChecksum, .. }));
        assert!(!truncate_torn(&fault).unwrap(), "corruption must not truncate");
        // Only records before the flip survive; nothing from later
        // segments is served past the damage.
        assert!(replayed.events.len() < events.len());
        assert_eq!(canon_all(&replayed.events), canon_all(&events[..replayed.events.len()]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_oldest_segment_is_a_seq_gap() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("gap");
        write_log(&dir, &events, 3, small());
        let files = segment_files(&dir, 0xabc).unwrap();
        assert!(files.len() >= 2);
        fs::remove_file(&files[0].1).unwrap();
        let replayed = replay(&dir, 0xabc, 0, &ds).unwrap();
        assert!(matches!(replayed.fault, Some(WalFault::SeqGap { expected: 0, .. })));
        assert!(replayed.events.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retire_deletes_only_fully_covered_closed_segments() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("retire");
        let mut w = write_log(&dir, &events, 2, small());
        let before = segment_files(&dir, 0xabc).unwrap();
        assert!(before.len() >= 3);
        // A checkpoint at the second segment's start covers exactly the
        // first segment.
        let covered_through = before[1].0;
        let removed = w.retire_through(covered_through).unwrap();
        assert_eq!(removed, 1);
        let after = segment_files(&dir, 0xabc).unwrap();
        assert_eq!(after.len(), before.len() - 1);
        assert_eq!(after[0].0, before[1].0, "oldest survivor starts at the checkpoint");
        // Everything past the checkpoint still replays.
        let replayed = replay(&dir, 0xabc, covered_through, &ds).unwrap();
        assert!(replayed.fault.is_none());
        assert_eq!(canon_all(&replayed.events), canon_all(&events[covered_through as usize..]));
        // Retiring through the whole stream keeps the active segment.
        w.retire_through(events.len() as u64).unwrap();
        assert!(!segment_files(&dir, 0xabc).unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_batching_counts_and_rotation_forces_a_sync() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("fsync");
        // Big segments: no rotation syncs interfere.
        let opts = WalOptions { fsync_every: 4, segment_bytes: 1 << 20 };
        let mut w = WalWriter::open(&dir, 0xabc, opts, 0).unwrap();
        for chunk in events.chunks(2) {
            w.append(chunk).unwrap();
        }
        let appends = w.stats().appends;
        assert_eq!(w.stats().fsyncs, appends / 4, "one sync per fsync_every appends");
        w.sync().unwrap();
        let synced = w.stats().fsyncs;
        w.sync().unwrap();
        assert_eq!(w.stats().fsyncs, synced, "sync with nothing unsynced is free");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_and_empty_appends_are_clean() {
        let ds = dataset();
        let dir = tmp("empty");
        fs::create_dir_all(&dir).unwrap();
        let replayed = replay(&dir, 0xabc, 7, &ds).unwrap();
        assert!(replayed.fault.is_none());
        assert!(replayed.events.is_empty());
        assert_eq!(replayed.next_seq, 7);

        let mut w = WalWriter::open(&dir, 0xabc, WalOptions::default(), 7).unwrap();
        w.append(&[]).unwrap();
        assert_eq!(w.stats().appends, 0, "empty batches are not logged");
        assert!(segment_files(&dir, 0xabc).unwrap().is_empty(), "no segment until a real append");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_stream_id_refuses() {
        let ds = dataset();
        let events = events_from_dataset(&ds);
        let dir = tmp("stream");
        write_log(&dir, &events, 4, WalOptions::default());
        // Same directory, different stream: no files match the prefix.
        let other = replay(&dir, 0xdef, 0, &ds).unwrap();
        assert!(other.events.is_empty() && other.fault.is_none());
        // Rename a segment to the other stream's prefix: header refuses.
        let (start, path) = segment_files(&dir, 0xabc).unwrap().remove(0);
        let renamed = segment_path(&dir, 0xdef, start);
        fs::rename(&path, &renamed).unwrap();
        let replayed = replay(&dir, 0xdef, 0, &ds).unwrap();
        assert!(matches!(
            replayed.fault,
            Some(WalFault::Corrupt { kind: WalCorruptKind::StreamMismatch, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
