//! The resilient loader: streaming table ingest with retry, quarantine,
//! dedup, canonical reordering, and manifest verification.
//!
//! Outcome contract (what the chaos matrix asserts):
//!
//! - A recoverable stream (transient IO, replayed rows, out-of-order
//!   instance records) loads to a dataset *provably identical* to the
//!   clean input — the export manifest's row counts and content digests
//!   must agree after recovery.
//! - An unrecoverable stream (truncation, silent corruption, quarantine
//!   over budget) returns a typed [`CoreError`] carrying the full
//!   [`IngestReport`] accumulated so far — never a panic, never a
//!   silently partial dataset.

use std::cmp::Ordering;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crowd_core::answer::Answer;
use crowd_core::csv::{self, LossyRecords, Manifest, Table, TableDigest, MANIFEST_FILE};
use crowd_core::dataset::{Dataset, DatasetBuilder, InstanceRef, TaskInstance};
use crowd_core::error::{CoreError, FaultClass};
use crowd_core::provenance::{
    ErrorBudget, IngestReport, QuarantinedRow, TableReport, QUARANTINE_DETAIL_CAP,
};
use rayon::prelude::*;

use crate::retry::{read_all_with_retry, Backoff, Clock, SystemClock};
use crate::source::{DirSource, TableSource};

/// Fixed chunk size for the parallel instance decode — the same
/// discipline as `ScanPass::CHUNK`, so results are position-determined
/// and bit-identical at any thread count.
pub const CHUNK: usize = 8192;

/// Knobs for one resilient load.
#[derive(Clone)]
pub struct IngestOptions {
    /// Per-table quarantine budget.
    pub budget: ErrorBudget,
    /// Retry policy for transient IO errors.
    pub backoff: Backoff,
    /// Clock backing the backoff sleeps (inject [`crate::ManualClock`]
    /// in tests for zero wall-clock time).
    pub clock: Arc<dyn Clock>,
    /// Verify row counts + content digests against `manifest.csv` when
    /// present (strongly recommended; `false` skips reading it).
    pub verify_manifest: bool,
}

impl Default for IngestOptions {
    fn default() -> IngestOptions {
        IngestOptions {
            budget: ErrorBudget::default(),
            backoff: Backoff::default(),
            clock: Arc::new(SystemClock),
            verify_manifest: true,
        }
    }
}

impl fmt::Debug for IngestOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestOptions")
            .field("budget", &self.budget)
            .field("backoff", &self.backoff)
            .field("verify_manifest", &self.verify_manifest)
            .finish_non_exhaustive()
    }
}

/// A successful load: the dataset plus its coverage statement.
#[derive(Debug)]
pub struct Ingested {
    /// The validated dataset.
    pub dataset: Dataset,
    /// What it took to load it.
    pub report: IngestReport,
}

/// A failed load: the typed error plus everything learned before it.
#[derive(Debug)]
pub struct IngestFailure {
    /// Why the load aborted.
    pub error: CoreError,
    /// Per-table coverage and quarantine detail up to the failure point.
    pub report: IngestReport,
}

impl fmt::Display for IngestFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ingest failed: {} ({})", self.error, self.report.summary())
    }
}

impl std::error::Error for IngestFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Loads the dataset directory `dir` resiliently.
pub fn ingest_dir(dir: &Path, opts: &IngestOptions) -> Result<Ingested, IngestFailure> {
    ingest(&DirSource::new(dir), opts)
}

/// Loads the six tables from `source` under `opts`.
pub fn ingest(source: &dyn TableSource, opts: &IngestOptions) -> Result<Ingested, IngestFailure> {
    let mut report = IngestReport::new(opts.budget);
    match ingest_inner(source, opts, &mut report) {
        Ok(dataset) => Ok(Ingested { dataset, report }),
        Err(error) => Err(IngestFailure { error, report }),
    }
}

struct LoadCtx<'a> {
    source: &'a dyn TableSource,
    opts: &'a IngestOptions,
    manifest: Option<&'a Manifest>,
}

/// Entity-table row counts accepted so far, for forward-reference checks.
#[derive(Default)]
struct EntityCounts {
    sources: usize,
    countries: usize,
    workers: usize,
    task_types: usize,
    batches: usize,
}

fn ingest_inner(
    source: &dyn TableSource,
    opts: &IngestOptions,
    report: &mut IngestReport,
) -> Result<Dataset, CoreError> {
    let manifest = read_manifest(source, opts)?;
    report.manifest_present = manifest.is_some();
    let ctx = LoadCtx { source, opts, manifest: manifest.as_ref() };

    let mut b = DatasetBuilder::new();
    let mut counts = EntityCounts::default();
    for table in Table::ALL {
        let mut tr = TableReport::new(table.name());
        let result = load_table(&ctx, table, &mut b, &mut counts, &mut report.quarantine, &mut tr);
        report.tables.push(tr);
        result?;
    }
    // Backstop: the builder re-validates everything (the checks above are
    // a superset, so this only fires on a loader bug).
    b.finish()
}

fn read_manifest(
    source: &dyn TableSource,
    opts: &IngestOptions,
) -> Result<Option<Manifest>, CoreError> {
    if !opts.verify_manifest {
        return Ok(None);
    }
    let reader = source
        .open_manifest()
        .map_err(|e| CoreError::Csv { line: 0, message: format!("{MANIFEST_FILE}: {e}") })?;
    let Some(mut r) = reader else { return Ok(None) };
    let (bytes, _retries) = read_all_with_retry(&mut *r, "manifest", &opts.backoff, &*opts.clock)?;
    Manifest::parse(&String::from_utf8_lossy(&bytes)).map(Some)
}

fn load_table(
    ctx: &LoadCtx<'_>,
    table: Table,
    b: &mut DatasetBuilder,
    counts: &mut EntityCounts,
    qlog: &mut Vec<QuarantinedRow>,
    tr: &mut TableReport,
) -> Result<(), CoreError> {
    let reader = ctx
        .source
        .open(table)
        .map_err(|e| CoreError::Csv { line: 0, message: format!("{}: {e}", table.file_name()) })?;
    let mut reader = reader;
    let (bytes, retries) =
        read_all_with_retry(&mut *reader, table.name(), &ctx.opts.backoff, &*ctx.opts.clock)?;
    tr.retries = retries;
    // Lossy decode: a bit flip inside a UTF-8 sequence degrades to a
    // replacement character, which then fails parsing or digest
    // verification like any other corruption, instead of aborting the
    // whole load untyped.
    let text = String::from_utf8_lossy(&bytes);

    let mut records = csv::parse_records_lossy(&text);
    check_header(&mut records, table)?;
    let budget = ctx.opts.budget;
    let digest = if table == Table::Instances {
        load_instances(records, b, counts, budget, qlog, tr)?
    } else {
        load_entities(records, table, b, counts, budget, qlog, tr)?
    };

    if let Some(entry) = ctx.manifest.and_then(|m| m.entry(table)) {
        let digest_ok = entry.digest == digest;
        let ok = digest_ok && entry.rows == tr.accepted;
        tr.verified = Some(ok);
        if !ok {
            return Err(CoreError::ManifestMismatch {
                table: table.name(),
                expected_rows: entry.rows,
                got_rows: tr.accepted,
                digest_ok,
            });
        }
    }
    Ok(())
}

fn check_header(records: &mut LossyRecords<'_>, table: Table) -> Result<(), CoreError> {
    match records.next() {
        Some(Ok((_, f))) if f.join(",") == table.header() => Ok(()),
        Some(Ok((line, f))) => Err(CoreError::Csv {
            line,
            message: format!(
                "{}: expected header `{}`, got `{}`",
                table.file_name(),
                table.header(),
                f.join(",")
            ),
        }),
        Some(Err(e)) => Err(e),
        None => {
            Err(CoreError::Csv { line: 1, message: format!("{}: empty file", table.file_name()) })
        }
    }
}

fn line_of(e: &CoreError) -> usize {
    match e {
        CoreError::Csv { line, .. } => *line,
        _ => 0,
    }
}

/// Records one quarantined row; fails the load when the table's budget is
/// exhausted. Detail entries are capped, counts stay exact.
fn quarantine(
    tr: &mut TableReport,
    qlog: &mut Vec<QuarantinedRow>,
    budget: ErrorBudget,
    table: Table,
    line: usize,
    fault: FaultClass,
    message: String,
) -> Result<(), CoreError> {
    tr.quarantined += 1;
    if qlog.iter().filter(|q| q.table == table.name()).count() < QUARANTINE_DETAIL_CAP {
        qlog.push(QuarantinedRow { table: table.name(), line, fault, message });
    }
    if tr.quarantined > budget.max_quarantined_per_table {
        return Err(CoreError::BudgetExceeded {
            table: table.name(),
            quarantined: tr.quarantined,
            budget: budget.max_quarantined_per_table,
        });
    }
    Ok(())
}

fn load_entities(
    records: LossyRecords<'_>,
    table: Table,
    b: &mut DatasetBuilder,
    counts: &mut EntityCounts,
    budget: ErrorBudget,
    qlog: &mut Vec<QuarantinedRow>,
    tr: &mut TableReport,
) -> Result<u64, CoreError> {
    let mut digest = TableDigest::new(table);
    let mut rec = String::new();
    for item in records {
        let (line, fields) = match item {
            Ok(x) => x,
            Err(e) => {
                quarantine(
                    tr,
                    qlog,
                    budget,
                    table,
                    line_of(&e),
                    FaultClass::Malformed,
                    e.to_string(),
                )?;
                continue;
            }
        };
        if fields.len() == 1 && fields[0].is_empty() {
            quarantine(
                tr,
                qlog,
                budget,
                table,
                line,
                FaultClass::Malformed,
                "blank record".into(),
            )?;
            continue;
        }
        if fields.len() != table.arity() {
            let msg = format!("expected {} fields, got {}", table.arity(), fields.len());
            quarantine(tr, qlog, budget, table, line, FaultClass::Arity, msg)?;
            continue;
        }
        // Parse, reference-check, and (on acceptance) serialize the
        // canonical form into `rec` for the content digest.
        let reject: Option<(FaultClass, String)> = match table {
            Table::Sources => match csv::parse_source_row(&fields, line) {
                Ok(s) => {
                    rec.clear();
                    csv::source_record(&s, &mut rec);
                    b.add_source(s);
                    counts.sources += 1;
                    None
                }
                Err(e) => Some((FaultClass::Numeric, e.to_string())),
            },
            Table::Countries => match csv::parse_country_row(&fields, line) {
                Ok(name) => {
                    rec.clear();
                    csv::country_record(&name, &mut rec);
                    b.add_country(name);
                    counts.countries += 1;
                    None
                }
                Err(e) => Some((FaultClass::Numeric, e.to_string())),
            },
            Table::Workers => match csv::parse_worker_row(&fields, line) {
                Ok(w) if w.source.index() >= counts.sources => Some((
                    FaultClass::Dangling,
                    format!("source {} out of range ({} loaded)", w.source.raw(), counts.sources),
                )),
                Ok(w) if w.country.index() >= counts.countries => Some((
                    FaultClass::Dangling,
                    format!(
                        "country {} out of range ({} loaded)",
                        w.country.raw(),
                        counts.countries
                    ),
                )),
                Ok(w) => {
                    rec.clear();
                    csv::worker_record(&w, &mut rec);
                    b.add_worker(w);
                    counts.workers += 1;
                    None
                }
                Err(e) => Some((FaultClass::Numeric, e.to_string())),
            },
            Table::TaskTypes => match csv::parse_task_type_row(&fields, line) {
                Ok(tt) => {
                    rec.clear();
                    csv::task_type_record(&tt, &mut rec);
                    b.add_task_type(tt);
                    counts.task_types += 1;
                    None
                }
                Err(e) => Some((FaultClass::Numeric, e.to_string())),
            },
            Table::Batches => match csv::parse_batch_row(&fields, line) {
                Ok(batch) if batch.task_type.index() >= counts.task_types => Some((
                    FaultClass::Dangling,
                    format!(
                        "task type {} out of range ({} loaded)",
                        batch.task_type.raw(),
                        counts.task_types
                    ),
                )),
                Ok(batch) if batch.sampled && batch.html.is_none() => {
                    Some((FaultClass::Semantic, "sampled batch without task HTML".into()))
                }
                Ok(batch) => {
                    rec.clear();
                    csv::batch_record(&batch, &mut rec);
                    b.add_batch(batch);
                    counts.batches += 1;
                    None
                }
                Err(e) => Some((FaultClass::Numeric, e.to_string())),
            },
            Table::Instances => unreachable!("instances go through load_instances"),
        };
        match reject {
            None => {
                digest.update(&rec);
                tr.accepted += 1;
            }
            Some((fault, msg)) => quarantine(tr, qlog, budget, table, line, fault, msg)?,
        }
    }
    Ok(digest.finish())
}

type RawRecord = crowd_core::Result<(usize, Vec<String>)>;
type ParsedRow = Result<(usize, TaskInstance), (usize, FaultClass, String)>;

fn parse_one(item: &crowd_core::Result<(usize, Vec<String>)>) -> ParsedRow {
    match item {
        Ok((line, fields)) => {
            if fields.len() == 1 && fields[0].is_empty() {
                return Err((*line, FaultClass::Malformed, "blank record".into()));
            }
            if fields.len() != Table::Instances.arity() {
                let msg =
                    format!("expected {} fields, got {}", Table::Instances.arity(), fields.len());
                return Err((*line, FaultClass::Arity, msg));
            }
            csv::parse_instance_row(fields, *line)
                .map(|i| (*line, i))
                .map_err(|e| (*line, FaultClass::Numeric, e.to_string()))
        }
        Err(e) => Err((line_of(e), FaultClass::Malformed, e.to_string())),
    }
}

fn validate_instance(i: &TaskInstance, counts: &EntityCounts) -> Option<(FaultClass, String)> {
    if i.batch.index() >= counts.batches {
        return Some((
            FaultClass::Dangling,
            format!("batch {} out of range ({} loaded)", i.batch.raw(), counts.batches),
        ));
    }
    if i.worker.index() >= counts.workers {
        return Some((
            FaultClass::Dangling,
            format!("worker {} out of range ({} loaded)", i.worker.raw(), counts.workers),
        ));
    }
    if i.end.as_secs() < i.start.as_secs() {
        return Some((FaultClass::Semantic, "ends before it starts".into()));
    }
    if i.trust.is_nan() || !(0.0..=1.0).contains(&i.trust) {
        return Some((FaultClass::Semantic, format!("trust {} outside [0, 1]", i.trust)));
    }
    None
}

fn answer_key(a: &Answer) -> (u8, u16, &str) {
    match a {
        Answer::Skipped => (0, 0, ""),
        Answer::Choice(i) => (1, *i, ""),
        Answer::Text(t) => (2, 0, t.as_str()),
    }
}

/// Total order over instance rows: every field participates, so equal keys
/// mean byte-identical records and the sort is deterministic regardless of
/// arrival order or thread count. `trust` is in `[0, 1]` (validated), so
/// its bit pattern orders consistently with its value.
fn canonical_cmp(a: &TaskInstance, b: &TaskInstance) -> Ordering {
    let ka = (
        a.batch.raw(),
        a.item.raw(),
        a.worker.raw(),
        a.start.as_secs(),
        a.end.as_secs(),
        a.trust.to_bits(),
    );
    let kb = (
        b.batch.raw(),
        b.item.raw(),
        b.worker.raw(),
        b.start.as_secs(),
        b.end.as_secs(),
        b.trust.to_bits(),
    );
    ka.cmp(&kb).then_with(|| answer_key(&a.answer).cmp(&answer_key(&b.answer)))
}

fn load_instances(
    records: LossyRecords<'_>,
    b: &mut DatasetBuilder,
    counts: &EntityCounts,
    budget: ErrorBudget,
    qlog: &mut Vec<QuarantinedRow>,
    tr: &mut TableReport,
) -> Result<u64, CoreError> {
    let table = Table::Instances;
    // Record framing is inherently serial (quoting); field decode is not.
    // Fixed-size chunks + order-preserving parallel map keep the result
    // position-determined, hence identical at 1 and N threads.
    let recs: Vec<RawRecord> = records.collect();
    let chunks: Vec<&[RawRecord]> = recs.chunks(CHUNK).collect();
    let parsed: Vec<Vec<ParsedRow>> =
        chunks.par_iter().map(|chunk| chunk.iter().map(parse_one).collect()).collect();

    let mut accepted: Vec<TaskInstance> = Vec::with_capacity(recs.len());
    for row in parsed.into_iter().flatten() {
        match row {
            Ok((line, inst)) => match validate_instance(&inst, counts) {
                Some((fault, msg)) => quarantine(tr, qlog, budget, table, line, fault, msg)?,
                None => accepted.push(inst),
            },
            Err((line, fault, msg)) => quarantine(tr, qlog, budget, table, line, fault, msg)?,
        }
    }

    // Restore canonical order (tolerating reordered arrivals), then drop
    // byte-identical replays. `repaired` counts the arrival-order
    // inversions the sort undid.
    tr.repaired =
        accepted.windows(2).filter(|w| canonical_cmp(&w[1], &w[0]) == Ordering::Less).count()
            as u64;
    accepted.sort_by(canonical_cmp);
    let before = accepted.len();
    accepted.dedup();
    tr.deduped = (before - accepted.len()) as u64;

    let mut digest = TableDigest::new(table);
    let mut rec = String::new();
    b.reserve_instances(accepted.len());
    for inst in accepted {
        rec.clear();
        csv::instance_record(
            InstanceRef {
                batch: inst.batch,
                item: inst.item,
                worker: inst.worker,
                start: inst.start,
                end: inst.end,
                trust: inst.trust,
                answer: &inst.answer,
            },
            &mut rec,
        );
        digest.update(&rec);
        tr.accepted += 1;
        b.add_instance(inst);
    }
    Ok(digest.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use crate::retry::ManualClock;
    use crate::source::ChaosSource;
    use crowd_core::csv::ManifestEntry;
    use crowd_core::prelude::*;
    use std::collections::HashMap;
    use std::io::{self, Cursor, Read};

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("clix", SourceKind::Dedicated));
        let c = b.add_country("USA");
        let w = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(
            TaskType::new("find \"urls\", quickly\nplease")
                .with_goal(Goal::LanguageUnderstanding)
                .with_operator(Operator::Gather)
                .with_data_type(DataType::Webpage),
        );
        let t0 = Timestamp::from_ymd(2015, 6, 1);
        let batch =
            b.add_batch(Batch::new(tt, t0).with_html("<div class=\"a,b\">\n<p>hi</p></div>"));
        b.add_batch(Batch::new(tt, t0 + Duration::from_days(1)).unsampled());
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(0),
            worker: w,
            start: t0 + Duration::from_secs(100),
            end: t0 + Duration::from_secs(160),
            trust: 0.875,
            answer: Answer::Text("http://example.com, \"the\" site".into()),
        });
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(0),
            worker: w,
            start: t0 + Duration::from_secs(400),
            end: t0 + Duration::from_secs(460),
            trust: 0.5,
            answer: Answer::Skipped,
        });
        b.finish().unwrap()
    }

    /// An in-memory [`TableSource`] seeded from a rendered dataset.
    struct MemSource {
        tables: HashMap<Table, Vec<u8>>,
        manifest: Option<Vec<u8>>,
    }

    impl MemSource {
        fn from_dataset(ds: &Dataset) -> MemSource {
            let mut tables = HashMap::new();
            let mut entries = Vec::new();
            for t in Table::ALL {
                let (text, entry) = csv::render_table(ds, t);
                tables.insert(t, text.into_bytes());
                entries.push(entry);
            }
            let manifest = Manifest { entries }.to_csv().into_bytes();
            MemSource { tables, manifest: Some(manifest) }
        }

        fn text(&self, table: Table) -> String {
            String::from_utf8(self.tables[&table].clone()).unwrap()
        }

        fn set(&mut self, table: Table, text: &str) {
            self.tables.insert(table, text.as_bytes().to_vec());
        }
    }

    impl TableSource for MemSource {
        fn open(&self, table: Table) -> io::Result<Box<dyn Read + '_>> {
            match self.tables.get(&table) {
                Some(b) => Ok(Box::new(Cursor::new(b.clone()))),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "missing table")),
            }
        }

        fn open_manifest(&self) -> io::Result<Option<Box<dyn Read + '_>>> {
            Ok(self.manifest.clone().map(|b| Box::new(Cursor::new(b)) as Box<dyn Read>))
        }
    }

    fn test_opts() -> IngestOptions {
        IngestOptions { clock: Arc::new(ManualClock::new()), ..IngestOptions::default() }
    }

    fn assert_same_dataset(a: &Dataset, b: &Dataset) {
        for t in Table::ALL {
            assert_eq!(
                csv::render_table(a, t).0,
                csv::render_table(b, t).0,
                "{} differs",
                t.name()
            );
        }
    }

    #[test]
    fn clean_input_ingests_clean_and_verified() {
        let ds = sample();
        let src = MemSource::from_dataset(&ds);
        let out = ingest(&src, &test_opts()).unwrap();
        assert_same_dataset(&out.dataset, &ds);
        assert!(out.report.is_clean(), "clean input: {}", out.report.summary());
        assert!(out.report.manifest_present);
        assert_eq!(out.report.coverage(), 1.0);
        for tr in &out.report.tables {
            assert_eq!(tr.verified, Some(true), "{} unverified", tr.table);
        }
    }

    #[test]
    fn missing_manifest_loads_unverified() {
        let ds = sample();
        let mut src = MemSource::from_dataset(&ds);
        src.manifest = None;
        let out = ingest(&src, &test_opts()).unwrap();
        assert!(!out.report.manifest_present);
        assert!(out.report.tables.iter().all(|tr| tr.verified.is_none()));
        assert_same_dataset(&out.dataset, &ds);
    }

    #[test]
    fn bad_rows_are_quarantined_with_the_right_class() {
        let ds = sample();
        let mut src = MemSource::from_dataset(&ds);
        let mut workers = src.text(Table::Workers);
        workers.push_str("0\n"); // arity
        workers.push_str("x,y\n"); // numeric
        workers.push_str("9,0\n"); // dangling source
        src.set(Table::Workers, &workers);
        let out = ingest(&src, &test_opts()).unwrap();
        let tr = out.report.table("workers").unwrap();
        assert_eq!(tr.quarantined, 3);
        assert_eq!(tr.accepted, 1, "original row still accepted");
        assert_eq!(tr.verified, Some(true), "quarantined rows never enter the digest");
        let faults: Vec<FaultClass> = out
            .report
            .quarantine
            .iter()
            .filter(|q| q.table == "workers")
            .map(|q| q.fault)
            .collect();
        assert_eq!(faults, vec![FaultClass::Arity, FaultClass::Numeric, FaultClass::Dangling]);
        assert!(out.report.coverage() < 1.0);
    }

    #[test]
    fn strict_budget_fails_fast_with_report() {
        let ds = sample();
        let mut src = MemSource::from_dataset(&ds);
        let mut workers = src.text(Table::Workers);
        workers.push_str("x,y\n");
        src.set(Table::Workers, &workers);
        let opts = IngestOptions { budget: ErrorBudget::strict(), ..test_opts() };
        let failure = ingest(&src, &opts).unwrap_err();
        assert!(matches!(
            failure.error,
            CoreError::BudgetExceeded { table: "workers", quarantined: 1, budget: 0 }
        ));
        let tr = failure.report.table("workers").unwrap();
        assert_eq!(tr.quarantined, 1);
        assert_eq!(failure.report.quarantine.len(), 1);
        assert!(failure.to_string().contains("error budget"));
    }

    #[test]
    fn duplicated_and_reordered_instances_recover_to_the_clean_dataset() {
        let ds = sample();
        let src = ChaosSource::new(MemSource::from_dataset(&ds)).with_plan(
            Table::Instances,
            FaultPlan {
                faults: vec![
                    Fault::DuplicateRecord { record: 1 },
                    Fault::SwapWithNext { record: 1 },
                ],
            },
        );
        let out = ingest(&src, &test_opts()).unwrap();
        assert_same_dataset(&out.dataset, &ds);
        let tr = out.report.table("instances").unwrap();
        assert_eq!(tr.deduped, 1, "replayed row dropped");
        assert!(tr.repaired >= 1, "arrival-order inversion counted");
        assert_eq!(tr.verified, Some(true), "recovery is digest-verified");
        assert!(!out.report.is_clean());
    }

    #[test]
    fn transient_reads_recover_with_counted_retries() {
        let ds = sample();
        let src = ChaosSource::new(MemSource::from_dataset(&ds)).with_plan(
            Table::Instances,
            FaultPlan::single(Fault::Transient { first_call: 0, times: 2, would_block: false }),
        );
        let clock = Arc::new(ManualClock::new());
        let opts = IngestOptions { clock: clock.clone(), ..IngestOptions::default() };
        let out = ingest(&src, &opts).unwrap();
        assert_same_dataset(&out.dataset, &ds);
        assert_eq!(out.report.table("instances").unwrap().retries, 2);
        assert_eq!(out.report.total_retries(), 2);
        assert!(!out.report.is_clean());
        assert_eq!(clock.slept().len(), 2, "backoff consulted the injected clock");
    }

    #[test]
    fn truncation_is_a_manifest_mismatch() {
        let ds = sample();
        let len = {
            let src = MemSource::from_dataset(&ds);
            src.text(Table::Instances).len() as u64
        };
        let src = ChaosSource::new(MemSource::from_dataset(&ds))
            .with_plan(Table::Instances, FaultPlan::single(Fault::TruncateAt { at: len - 4 }));
        let failure = ingest(&src, &test_opts()).unwrap_err();
        match failure.error {
            CoreError::ManifestMismatch { table, expected_rows, got_rows, .. } => {
                assert_eq!(table, "instances");
                assert_eq!(expected_rows, 2);
                assert!(got_rows < 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            failure.report.total_quarantined() > 0 || {
                let tr = failure.report.table("instances").unwrap();
                tr.accepted < 2
            }
        );
    }

    #[test]
    fn silent_bit_corruption_is_a_manifest_mismatch() {
        let ds = sample();
        let at = {
            let src = MemSource::from_dataset(&ds);
            src.text(Table::Instances).find("example").unwrap() as u64
        };
        let src = ChaosSource::new(MemSource::from_dataset(&ds))
            .with_plan(Table::Instances, FaultPlan::single(Fault::FlipBit { at, bit: 1 }));
        let failure = ingest(&src, &test_opts()).unwrap_err();
        match failure.error {
            CoreError::ManifestMismatch { table: "instances", digest_ok, .. } => {
                assert!(!digest_ok, "content digest must catch the flip");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ingest_dir_roundtrips_an_exported_dataset() {
        let ds = sample();
        let dir = std::env::temp_dir().join(format!("crowd_ingest_rt_{}", std::process::id()));
        csv::export_dir(&ds, &dir).unwrap();
        let out = ingest_dir(&dir, &test_opts()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_same_dataset(&out.dataset, &ds);
        assert!(out.report.is_clean());
        assert!(out.report.manifest_present);
    }

    #[test]
    fn missing_table_is_a_typed_error_not_a_panic() {
        let ds = sample();
        let mut src = MemSource::from_dataset(&ds);
        src.tables.remove(&Table::Batches);
        let failure = ingest(&src, &test_opts()).unwrap_err();
        assert!(matches!(failure.error, CoreError::Csv { line: 0, .. }));
        assert!(failure.error.to_string().contains("batches.csv"));
    }

    #[test]
    fn empty_and_misheaded_tables_are_typed_errors() {
        let ds = sample();
        let mut src = MemSource::from_dataset(&ds);
        src.set(Table::Sources, "");
        let failure = ingest(&src, &test_opts()).unwrap_err();
        assert!(failure.error.to_string().contains("empty file"));

        let mut src = MemSource::from_dataset(&ds);
        src.set(Table::Sources, "wrong,header\n");
        let failure = ingest(&src, &test_opts()).unwrap_err();
        assert!(failure.error.to_string().contains("expected header"));
    }

    #[test]
    fn manifest_roundtrip_entry_matches_loader_digest() {
        // The digest the loader computes over accepted rows must equal the
        // exporter's, or verification would reject clean data.
        let ds = sample();
        let src = MemSource::from_dataset(&ds);
        let out = ingest(&src, &test_opts()).unwrap();
        for t in Table::ALL {
            let (_, entry) = csv::render_table(&out.dataset, t);
            let ManifestEntry { rows, .. } = entry;
            assert_eq!(rows, out.report.table(t.name()).unwrap().accepted);
        }
    }
}
