//! Deterministic, seeded fault injection over byte streams.
//!
//! A [`FaultPlan`] is an explicit schedule of faults; [`ChaosReader`] wraps
//! any `io::Read` and applies the schedule byte-for-byte, so a given
//! `(input, plan)` pair always produces the same corrupted stream and the
//! same injected errors — chaos tests replay exactly from a seed.
//!
//! Record-level faults (duplicate, swap) are quote-aware: a record boundary
//! is a newline outside a quoted field, matching the CSV grammar, so
//! multi-line HTML fields are moved as a unit.

use std::collections::VecDeque;
use std::io::{self, Read};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The stream ends early: bytes at offsets `>= at` are dropped.
    TruncateAt {
        /// First byte offset not delivered.
        at: u64,
    },
    /// One bit of the byte at offset `at` is XOR-flipped.
    FlipBit {
        /// Byte offset to corrupt.
        at: u64,
        /// Bit index (taken mod 8).
        bit: u8,
    },
    /// CSV record `record` (0 = header) is emitted twice.
    DuplicateRecord {
        /// Zero-based record index.
        record: u64,
    },
    /// CSV record `record` swaps places with its successor.
    SwapWithNext {
        /// Zero-based record index.
        record: u64,
    },
    /// Read calls `first_call .. first_call + times` fail transiently.
    Transient {
        /// Zero-based index of the first failing `read` call.
        first_call: u64,
        /// How many consecutive calls fail.
        times: u32,
        /// `WouldBlock` instead of `Interrupted`.
        would_block: bool,
    },
}

/// The five fault families the chaos matrix sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Partial upload: the stream stops early.
    Truncation,
    /// Silent byte corruption.
    BitFlip,
    /// A record is replayed.
    Duplicate,
    /// Two adjacent records arrive out of order.
    Reorder,
    /// Transient `Interrupted`/`WouldBlock` IO errors.
    Transient,
}

impl FaultKind {
    /// Every fault family, in matrix order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Truncation,
        FaultKind::BitFlip,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Transient,
    ];

    /// Stable lower-case name (test matrix labels).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncation => "truncation",
            FaultKind::BitFlip => "bit_flip",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Transient => "transient",
        }
    }
}

/// A deterministic schedule of faults for one stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// No faults: the stream passes through unchanged.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with exactly one fault.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan { faults: vec![fault] }
    }

    /// Derives one fault of family `kind` from `seed`, positioned inside a
    /// stream of roughly `len` bytes / `records` records (header included).
    /// The same arguments always yield the same plan.
    ///
    /// Record-level faults avoid record 0 (the header) so the injected
    /// damage lands in data, not table framing.
    pub fn seeded(seed: u64, kind: FaultKind, len: u64, records: u64) -> FaultPlan {
        let mut s = seed ^ 0xcafe_f00d_d15e_a5e5;
        // Burn a few draws so nearby seeds diverge.
        splitmix(&mut s);
        let draw = |s: &mut u64, lo: u64, hi: u64| {
            // Uniform-ish in [lo, hi); hi > lo required.
            lo + splitmix(s) % (hi - lo).max(1)
        };
        let fault = match kind {
            FaultKind::Truncation => {
                // Cut somewhere in the back half so the header survives.
                let at = draw(&mut s, len / 2, len.max(1));
                Fault::TruncateAt { at }
            }
            FaultKind::BitFlip => {
                let at = draw(&mut s, 0, len.max(1));
                let bit = (splitmix(&mut s) % 8) as u8;
                Fault::FlipBit { at, bit }
            }
            FaultKind::Duplicate => {
                let record = draw(&mut s, 1, records.max(2));
                Fault::DuplicateRecord { record }
            }
            FaultKind::Reorder => {
                // Needs a successor: stay below the last record.
                let record = draw(&mut s, 1, (records.saturating_sub(1)).max(2));
                Fault::SwapWithNext { record }
            }
            FaultKind::Transient => {
                let first_call = draw(&mut s, 0, 4);
                let times = 1 + (splitmix(&mut s) % 2) as u32;
                let would_block = splitmix(&mut s).is_multiple_of(2);
                Fault::Transient { first_call, times, would_block }
            }
        };
        FaultPlan::single(fault)
    }
}

struct TransientState {
    first_call: u64,
    times: u32,
    emitted: u32,
    would_block: bool,
}

/// An `io::Read` adapter that applies a [`FaultPlan`] to the wrapped
/// stream. Deterministic: the output depends only on the inner bytes and
/// the plan, never on read-call chunking (record faults are resolved
/// against a quote-aware record index, byte faults against absolute input
/// offsets).
pub struct ChaosReader<R> {
    inner: R,
    truncate_at: Option<u64>,
    flips: Vec<(u64, u8)>,
    dups: Vec<u64>,
    swaps: Vec<u64>,
    transients: Vec<TransientState>,
    in_pos: u64,
    record_idx: u64,
    in_quotes: bool,
    cur: Vec<u8>,
    held: Option<Vec<u8>>,
    out: VecDeque<u8>,
    read_calls: u64,
    inner_done: bool,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: R, plan: &FaultPlan) -> ChaosReader<R> {
        let mut r = ChaosReader {
            inner,
            truncate_at: None,
            flips: Vec::new(),
            dups: Vec::new(),
            swaps: Vec::new(),
            transients: Vec::new(),
            in_pos: 0,
            record_idx: 0,
            in_quotes: false,
            cur: Vec::new(),
            held: None,
            out: VecDeque::new(),
            read_calls: 0,
            inner_done: false,
        };
        for &f in &plan.faults {
            match f {
                Fault::TruncateAt { at } => {
                    r.truncate_at = Some(r.truncate_at.map_or(at, |t| t.min(at)));
                }
                Fault::FlipBit { at, bit } => r.flips.push((at, bit & 7)),
                Fault::DuplicateRecord { record } => r.dups.push(record),
                Fault::SwapWithNext { record } => r.swaps.push(record),
                Fault::Transient { first_call, times, would_block } => {
                    r.transients.push(TransientState { first_call, times, emitted: 0, would_block })
                }
            }
        }
        r
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.out.extend(bytes.iter().copied());
    }

    /// A record just completed (terminating newline included in `cur`).
    fn complete_record(&mut self) {
        let idx = self.record_idx;
        self.record_idx += 1;
        let rec = std::mem::take(&mut self.cur);
        if self.swaps.contains(&idx) {
            // Hold this record; it is emitted after its successor. If a
            // record is already held (overlapping swaps), release it first
            // so nothing is ever lost.
            if let Some(prev) = self.held.take() {
                self.emit(&prev);
            }
            if self.dups.contains(&idx) {
                self.emit(&rec);
            }
            self.held = Some(rec);
            return;
        }
        self.emit(&rec);
        if self.dups.contains(&idx) {
            self.emit(&rec);
        }
        if let Some(h) = self.held.take() {
            self.emit(&h);
        }
    }

    /// Drains any held/partial record at end of stream.
    fn flush(&mut self) {
        if let Some(h) = self.held.take() {
            self.emit(&h);
        }
        if !self.cur.is_empty() {
            let tail = std::mem::take(&mut self.cur);
            self.emit(&tail);
        }
    }

    /// Pulls one chunk from the inner reader through the fault pipeline.
    fn pump(&mut self) -> io::Result<()> {
        let mut tmp = [0u8; 4096];
        let n = self.inner.read(&mut tmp)?;
        if n == 0 {
            self.inner_done = true;
            self.flush();
            return Ok(());
        }
        for &raw in &tmp[..n] {
            let pos = self.in_pos;
            self.in_pos += 1;
            if let Some(t) = self.truncate_at {
                if pos >= t {
                    self.inner_done = true;
                    self.flush();
                    return Ok(());
                }
            }
            let mut b = raw;
            for &(at, bit) in &self.flips {
                if at == pos {
                    b ^= 1 << bit;
                }
            }
            if b == b'"' {
                self.in_quotes = !self.in_quotes;
            }
            self.cur.push(b);
            if b == b'\n' && !self.in_quotes {
                self.complete_record();
            }
        }
        Ok(())
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let call = self.read_calls;
        self.read_calls += 1;
        for t in &mut self.transients {
            if call >= t.first_call && t.emitted < t.times {
                t.emitted += 1;
                let kind = if t.would_block {
                    io::ErrorKind::WouldBlock
                } else {
                    io::ErrorKind::Interrupted
                };
                return Err(io::Error::new(kind, "injected transient fault"));
            }
        }
        while self.out.is_empty() && !self.inner_done {
            self.pump()?;
        }
        let n = buf.len().min(self.out.len());
        for slot in buf.iter_mut().take(n) {
            *slot = self.out.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drain(plan: &FaultPlan, input: &str) -> String {
        let mut r = ChaosReader::new(Cursor::new(input.as_bytes().to_vec()), plan);
        let mut out = Vec::new();
        let mut buf = [0u8; 7]; // odd size: exercise chunk boundaries
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                    ) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        String::from_utf8(out).unwrap()
    }

    const DOC: &str = "h\na,1\nb,2\nc,3\n";

    #[test]
    fn clean_plan_passes_through() {
        assert_eq!(drain(&FaultPlan::clean(), DOC), DOC);
    }

    #[test]
    fn truncation_cuts_the_stream() {
        let plan = FaultPlan::single(Fault::TruncateAt { at: 6 });
        assert_eq!(drain(&plan, DOC), "h\na,1\n");
    }

    #[test]
    fn bit_flip_changes_exactly_one_byte() {
        let plan = FaultPlan::single(Fault::FlipBit { at: 2, bit: 0 });
        let out = drain(&plan, DOC);
        assert_eq!(out.len(), DOC.len());
        assert_eq!(&out[..2], &DOC[..2]);
        assert_eq!(out.as_bytes()[2], DOC.as_bytes()[2] ^ 1);
        assert_eq!(&out[3..], &DOC[3..]);
    }

    #[test]
    fn duplicate_replays_a_record() {
        let plan = FaultPlan::single(Fault::DuplicateRecord { record: 2 });
        assert_eq!(drain(&plan, DOC), "h\na,1\nb,2\nb,2\nc,3\n");
    }

    #[test]
    fn swap_reorders_adjacent_records() {
        let plan = FaultPlan::single(Fault::SwapWithNext { record: 1 });
        assert_eq!(drain(&plan, DOC), "h\nb,2\na,1\nc,3\n");
    }

    #[test]
    fn swap_of_last_record_degenerates_to_identity() {
        let plan = FaultPlan::single(Fault::SwapWithNext { record: 3 });
        assert_eq!(drain(&plan, DOC), DOC);
    }

    #[test]
    fn swap_respects_quoted_newlines() {
        let doc = "h\na,\"x\ny\"\nb,2\n";
        let plan = FaultPlan::single(Fault::SwapWithNext { record: 1 });
        assert_eq!(drain(&plan, doc), "h\nb,2\na,\"x\ny\"\n");
    }

    #[test]
    fn transient_errors_then_data_flows() {
        let plan =
            FaultPlan::single(Fault::Transient { first_call: 0, times: 2, would_block: false });
        let mut r = ChaosReader::new(Cursor::new(DOC.as_bytes().to_vec()), &plan);
        let mut buf = [0u8; 64];
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), io::ErrorKind::Interrupted);
        let n = r.read(&mut buf).unwrap();
        assert!(n > 0, "stream recovers after the scheduled failures");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        for kind in FaultKind::ALL {
            let a = FaultPlan::seeded(42, kind, 1000, 50);
            let b = FaultPlan::seeded(42, kind, 1000, 50);
            assert_eq!(a, b, "{}", kind.name());
            let c = FaultPlan::seeded(43, kind, 1000, 50);
            // Different seeds usually differ (not guaranteed per-kind, but
            // the matrix as a whole must not collapse to one plan).
            let _ = c;
        }
        let plans: Vec<FaultPlan> =
            (0..16).map(|s| FaultPlan::seeded(s, FaultKind::BitFlip, 10_000, 50)).collect();
        let distinct: std::collections::HashSet<String> =
            plans.iter().map(|p| format!("{p:?}")).collect();
        assert!(distinct.len() > 8, "seeds spread bit-flip positions");
    }

    #[test]
    fn chaos_output_is_chunking_invariant() {
        let plan = FaultPlan::single(Fault::SwapWithNext { record: 2 });
        let baseline = drain(&plan, DOC);
        let mut r = ChaosReader::new(Cursor::new(DOC.as_bytes().to_vec()), &plan);
        let mut out = Vec::new();
        let mut one = [0u8; 1];
        while r.read(&mut one).unwrap() == 1 {
            out.push(one[0]);
        }
        assert_eq!(String::from_utf8(out).unwrap(), baseline);
    }
}
