//! Where table bytes come from: a directory on disk, optionally wrapped in
//! deterministic fault injection.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read};
use std::path::PathBuf;

use crowd_core::csv::{Table, MANIFEST_FILE};

use crate::fault::{ChaosReader, FaultPlan};

/// A provider of raw table streams for the loader.
pub trait TableSource {
    /// Opens the stream for `table`.
    fn open(&self, table: Table) -> io::Result<Box<dyn Read + '_>>;

    /// Opens the export manifest, `Ok(None)` when the directory has none
    /// (hand-assembled datasets, pre-manifest exports).
    fn open_manifest(&self) -> io::Result<Option<Box<dyn Read + '_>>>;
}

/// The plain on-disk layout `export_dir` writes: `<name>.csv` per table
/// plus `manifest.csv`.
#[derive(Debug, Clone)]
pub struct DirSource {
    dir: PathBuf,
}

impl DirSource {
    /// A source over `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DirSource {
        DirSource { dir: dir.into() }
    }
}

impl TableSource for DirSource {
    fn open(&self, table: Table) -> io::Result<Box<dyn Read + '_>> {
        Ok(Box::new(File::open(self.dir.join(table.file_name()))?))
    }

    fn open_manifest(&self) -> io::Result<Option<Box<dyn Read + '_>>> {
        match File::open(self.dir.join(MANIFEST_FILE)) {
            Ok(f) => Ok(Some(Box::new(f))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Wraps another source and injects per-table [`FaultPlan`]s — the chaos
/// harness. Tables without a plan pass through untouched; the manifest is
/// never corrupted (it is the ground truth faults are judged against).
pub struct ChaosSource<S> {
    inner: S,
    plans: HashMap<Table, FaultPlan>,
}

impl<S: TableSource> ChaosSource<S> {
    /// A chaos wrapper with no plans (pass-through).
    pub fn new(inner: S) -> ChaosSource<S> {
        ChaosSource { inner, plans: HashMap::new() }
    }

    /// Schedules `plan` for `table`.
    pub fn with_plan(mut self, table: Table, plan: FaultPlan) -> ChaosSource<S> {
        self.plans.insert(table, plan);
        self
    }
}

impl<S: TableSource> TableSource for ChaosSource<S> {
    fn open(&self, table: Table) -> io::Result<Box<dyn Read + '_>> {
        let inner = self.inner.open(table)?;
        Ok(match self.plans.get(&table) {
            Some(plan) => Box::new(ChaosReader::new(inner, plan)),
            None => inner,
        })
    }

    fn open_manifest(&self) -> io::Result<Option<Box<dyn Read + '_>>> {
        self.inner.open_manifest()
    }
}
