//! # crowd-ingest
//!
//! Streaming, fault-tolerant loader for the on-disk dataset — the
//! untrusted-input counterpart of `crowd_core::csv::import_dir`.
//!
//! The paper's raw marketplace logs (27M instances, 2012–2016) had to be
//! cleaned before analysis; real crowd platforms routinely deliver
//! duplicate submissions, out-of-order events, and partial uploads. This
//! crate loads such input deterministically and honestly:
//!
//! - **Fault injection** ([`fault`]): a seeded [`FaultPlan`] +
//!   [`ChaosReader`] wrap any `io::Read` and inject truncation, bit
//!   corruption, duplicate records, record reordering, and transient IO
//!   errors from a reproducible schedule — every chaos test replays.
//! - **Recovery** ([`retry`], [`loader`]): bounded retry with exponential
//!   backoff (injected [`Clock`], zero wall-clock sleeps in tests) for
//!   transient faults; per-record quarantine under a typed
//!   [`FaultClass`](crowd_core::FaultClass) taxonomy with a configurable
//!   [`ErrorBudget`](crowd_core::ErrorBudget) for permanent ones; dedup of
//!   replayed instance rows; canonical re-ordering of out-of-order
//!   instances.
//! - **Provenance**: every load returns an
//!   [`IngestReport`](crowd_core::IngestReport) so downstream analytics
//!   carry coverage metadata instead of silently computing over partial
//!   data. When the export [`Manifest`](crowd_core::csv::Manifest) is
//!   present, per-table row counts and content digests are verified, so a
//!   "recovered" dataset is provably identical to what the exporter wrote.
//! - **Determinism**: the instance decode is chunked at the same fixed
//!   8192-row discipline as the scan engine; clean-input ingest is
//!   bit-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod fault;
pub mod killpoint;
pub mod loader;
pub mod retry;
pub mod source;
pub mod wal;

pub use events::{
    event_log_to_csv, events_from_dataset, load_events, load_events_str, EventLog, EventOptions,
    EventStreamError, MarketEvent,
};
pub use fault::{ChaosReader, Fault, FaultKind, FaultPlan};
pub use killpoint::{kill_point, points_passed, KILL_AT_ENV};
pub use loader::{ingest, ingest_dir, IngestFailure, IngestOptions, Ingested, CHUNK};
pub use retry::{is_transient, read_all_with_retry, Backoff, Clock, ManualClock, SystemClock};
pub use source::{ChaosSource, DirSource, TableSource};
pub use wal::{
    replay as wal_replay, segment_files as wal_segment_files, truncate_torn, WalCorruptKind,
    WalError, WalFault, WalOptions, WalReplay, WalStats, WalWriter,
};
