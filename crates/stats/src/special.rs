//! Special functions needed for exact test p-values: `ln Γ`, the
//! regularized incomplete beta function, and the Student-t CDF built on it.
//!
//! Implementations follow the classic Lanczos approximation and the
//! Lentz continued-fraction evaluation of `I_x(a, b)`; accuracy is within
//! ~1e-10 across the parameter ranges exercised by the study's t-tests.

/// Natural log of the gamma function (Lanczos, g = 7, n = 9), valid for
/// `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients from Numerical Recipes / Boost's Lanczos(7, 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885,
        -1_259.139_216_722_403,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_312e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 ≤ x ≤ 1`.
pub fn betainc_reg(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in the region where it converges fastest.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz evaluation of the incomplete-beta continued fraction.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p_tail = 0.5 * betainc_reg(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p_tail
    } else {
        p_tail
    }
}

/// Two-sided tail probability `P(|T| ≥ |t|)` for Student's t.
pub fn student_t_two_sided(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    betainc_reg(0.5 * df, 0.5, x).clamp(0.0, 1.0)
}

/// Complementary error function (Numerical Recipes' rational Chebyshev
/// fit; relative error below 1.2e-7 everywhere).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF Φ(x), exact at 0 and symmetric by construction.
pub fn normal_cdf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.5;
    }
    if x > 0.0 {
        1.0 - 0.5 * erfc(x / std::f64::consts::SQRT_2)
    } else {
        0.5 * erfc(-x / std::f64::consts::SQRT_2)
    }
}

/// Two-sided normal tail probability `P(|Z| ≥ |z|)`.
pub fn normal_two_sided(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n−1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-10);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
        // Γ(3/2) = √π / 2
        close(ln_gamma(1.5), 0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2, 1e-10);
    }

    #[test]
    fn betainc_symmetry_and_bounds() {
        close(betainc_reg(2.0, 3.0, 0.0), 0.0, 1e-15);
        close(betainc_reg(2.0, 3.0, 1.0), 1.0, 1e-15);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let v = betainc_reg(2.5, 4.5, 0.3);
        let w = betainc_reg(4.5, 2.5, 0.7);
        close(v, 1.0 - w, 1e-12);
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            close(betainc_reg(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn betainc_known_values() {
        // scipy.special.betainc(2, 3, 0.4) = 0.5248
        close(betainc_reg(2.0, 3.0, 0.4), 0.5248, 1e-10);
        // scipy.special.betainc(0.5, 0.5, 0.5) = 0.5 (arcsine distribution)
        close(betainc_reg(0.5, 0.5, 0.5), 0.5, 1e-10);
    }

    #[test]
    fn t_cdf_symmetry() {
        for &df in &[1.0, 5.0, 30.0] {
            close(student_t_cdf(0.0, df), 0.5, 1e-12);
            close(student_t_cdf(1.3, df) + student_t_cdf(-1.3, df), 1.0, 1e-12);
        }
    }

    #[test]
    fn t_cdf_cauchy_case() {
        // df = 1 is the Cauchy distribution: F(1) = 3/4.
        close(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
        close(student_t_two_sided(1.0, 1.0), 0.5, 1e-10);
    }

    #[test]
    fn t_critical_values_match_tables() {
        // Classic table: P(|T| ≥ 2.228) = 0.05 at df = 10.
        close(student_t_two_sided(2.228_138_85, 10.0), 0.05, 1e-6);
        // P(|T| ≥ 2.575) ≈ 0.01 for df → large; at df = 120, t_0.005 = 2.617.
        close(student_t_two_sided(2.617_4, 120.0), 0.01, 1e-4);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 0.0 + 1e-15);
        close(normal_cdf(1.96), 0.975_002, 1e-5);
        close(normal_cdf(-1.96), 0.024_998, 1e-5);
        close(normal_cdf(1.0), 0.841_345, 1e-5);
        close(normal_cdf(3.0), 0.998_650, 1e-5);
        // Symmetry.
        for z in [0.3, 1.1, 2.7] {
            close(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-12);
        }
    }

    #[test]
    fn erfc_bounds_and_known() {
        close(erfc(0.0), 1.0, 1e-7);
        close(erfc(1.0), 0.157_299_2, 1e-6);
        close(erfc(-1.0), 1.842_700_8, 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn normal_two_sided_matches_tables() {
        close(normal_two_sided(1.959_964), 0.05, 1e-5);
        close(normal_two_sided(2.575_829), 0.01, 1e-5);
    }

    #[test]
    fn t_cdf_infinite_t() {
        assert_eq!(student_t_cdf(f64::INFINITY, 7.0), 1.0);
        assert_eq!(student_t_cdf(f64::NEG_INFINITY, 7.0), 0.0);
    }
}
