//! The §4.2 median-split binning methodology.
//!
//! "We separate the clusters into two bins based on their feature value —
//! all clusters with feature value lower than the global median feature
//! value go into Bin-1, while the ones with feature value higher than the
//! median go into Bin-2. Clusters with feature value exactly equal to the
//! median are all put into either Bin-1 or Bin-2 while keeping the bins as
//! balanced as possible."

use crate::descriptive::median;
use crate::ttest::{welch_t_test, TTestResult};

/// Result of splitting `(feature, metric)` observations at the median
/// feature value.
#[derive(Debug, Clone, PartialEq)]
pub struct MedianSplit {
    /// The global median feature value the split happened at.
    pub split_value: f64,
    /// Metric values whose feature is below (or tied-assigned-low) the median.
    pub bin1: Vec<f64>,
    /// Metric values whose feature is above (or tied-assigned-high) the median.
    pub bin2: Vec<f64>,
    /// Whether the tied group (feature == median) was placed in bin 2.
    pub ties_in_bin2: bool,
}

impl MedianSplit {
    /// Median metric value of bin 1, `None` when the bin is empty.
    pub fn median1(&self) -> Option<f64> {
        median(&self.bin1)
    }

    /// Median metric value of bin 2, `None` when the bin is empty.
    pub fn median2(&self) -> Option<f64> {
        median(&self.bin2)
    }

    /// Welch t-test between the two bins' metric values (§4.2 step 3).
    pub fn t_test(&self) -> Option<TTestResult> {
        welch_t_test(&self.bin1, &self.bin2)
    }

    /// Bin-1 / Bin-2 sizes.
    pub fn sizes(&self) -> (usize, usize) {
        (self.bin1.len(), self.bin2.len())
    }
}

/// Splits observations at the median feature value, exactly per §4.2:
/// strictly-below goes to bin 1, strictly-above to bin 2, and the tied
/// group goes wholesale to whichever side keeps the bins more balanced.
/// Returns `None` on empty input or when a bin ends up empty (constant
/// feature) — no contrast exists to analyze.
pub fn median_split(observations: &[(f64, f64)]) -> Option<MedianSplit> {
    if observations.is_empty() {
        return None;
    }
    let features: Vec<f64> = observations.iter().map(|&(f, _)| f).collect();
    let m = median(&features)?;
    let mut bin1 = Vec::new();
    let mut bin2 = Vec::new();
    let mut tied = Vec::new();
    for &(f, metric) in observations {
        if f < m {
            bin1.push(metric);
        } else if f > m {
            bin2.push(metric);
        } else {
            tied.push(metric);
        }
    }
    // Place the tied group as one block on the side that minimizes imbalance.
    let imbalance_low = (bin1.len() + tied.len()).abs_diff(bin2.len());
    let imbalance_high = bin1.len().abs_diff(bin2.len() + tied.len());
    let ties_in_bin2 = imbalance_high < imbalance_low;
    if ties_in_bin2 {
        bin2.extend(tied);
    } else {
        bin1.extend(tied);
    }
    if bin1.is_empty() || bin2.is_empty() {
        return None;
    }
    Some(MedianSplit { split_value: m, bin1, bin2, ties_in_bin2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_at_median() {
        let obs: Vec<(f64, f64)> = (1..=9).map(|i| (i as f64, i as f64 * 10.0)).collect();
        let s = median_split(&obs).unwrap();
        assert_eq!(s.split_value, 5.0);
        // 1..4 strictly below (4 items), 6..9 strictly above (4), tie {5}
        // balances either way; block goes low by default tie-break.
        assert_eq!(s.bin1.len() + s.bin2.len(), 9);
        assert!(s.sizes().0.abs_diff(s.sizes().1) <= 1);
    }

    #[test]
    fn tie_block_balances_bins() {
        // Features: many ties at the median.
        let obs =
            [(1.0, 1.0), (2.0, 2.0), (2.0, 3.0), (2.0, 4.0), (2.0, 5.0), (3.0, 6.0), (3.0, 7.0)];
        let s = median_split(&obs).unwrap();
        assert_eq!(s.split_value, 2.0);
        // below = {1}, above = {6,7}, tied = {2,3,4,5}.
        // low: |1+4 − 2| = 3 ; high: |1 − 2−4| = 5 → ties go low.
        assert!(!s.ties_in_bin2);
        assert_eq!(s.sizes(), (5, 2));
    }

    #[test]
    fn tie_block_goes_high_when_that_balances() {
        // below = {1,2,3}, tied = {4}, above = {}. high: |3-1|=2; low: |4-0|=4.
        let obs = [(1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (3.5, 0.0), (3.5, 1.0)];
        // median of [1,2,3,3.5,3.5] = 3 → below {1,2}, tied {3}, above {3.5,3.5}
        let s = median_split(&obs).unwrap();
        assert_eq!(s.split_value, 3.0);
        assert_eq!(s.sizes(), (3, 2)); // low: |3-2|=1 beats high: |2-3|=1 → low wins ties? equal → low
    }

    #[test]
    fn constant_feature_yields_none() {
        let obs = [(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)];
        assert!(median_split(&obs).is_none(), "no contrast with constant feature");
    }

    #[test]
    fn empty_yields_none() {
        assert!(median_split(&[]).is_none());
    }

    #[test]
    fn medians_and_test_flow_through() {
        // Construct a clear effect: low feature → high metric.
        let mut obs = Vec::new();
        for i in 0..40 {
            let noise = (i % 7) as f64 * 0.01;
            obs.push((1.0 + (i % 3) as f64 * 0.1, 10.0 + noise));
            obs.push((9.0 + (i % 3) as f64 * 0.1, 1.0 + noise));
        }
        let s = median_split(&obs).unwrap();
        let (m1, m2) = (s.median1().unwrap(), s.median2().unwrap());
        assert!(m1 > m2, "low-feature bin should carry the high metric");
        let t = s.t_test().unwrap();
        assert!(t.significant(), "clear separation must be significant");
    }

    #[test]
    fn binary_feature_split() {
        // has_example ∈ {0, 1}, mostly 0 — mirrors the paper's #examples
        // splits where bin-1 is "= 0" and bin-2 "> 0".
        let mut obs = vec![(0.0, 5.0); 20];
        obs.extend(vec![(1.0, 2.0); 6]);
        let s = median_split(&obs).unwrap();
        assert_eq!(s.split_value, 0.0);
        assert_eq!(s.sizes(), (20, 6));
        assert_eq!(s.median1(), Some(5.0));
        assert_eq!(s.median2(), Some(2.0));
    }
}
