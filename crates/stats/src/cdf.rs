//! Empirical cumulative distribution functions.
//!
//! The paper's correlation analyses are visualized as CDF plots
//! (Figs. 14, 25): "for x = m, the corresponding y value … represents the
//! probability that a batch will have metric value better than m" (§4.2).

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds from a sample (NaNs are rejected). `None` when empty.
    pub fn new(xs: &[f64]) -> Option<EmpiricalCdf> {
        if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(EmpiricalCdf { sorted })
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// `F(x) = P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Survival function `P(X > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Quantile (inverse CDF): smallest sample value `v` with `F(v) ≥ q`,
    /// for `q ∈ (0, 1]`; `None` outside that range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let n = self.sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[k - 1])
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Step points `(x, F(x))` suitable for plotting: one point per distinct
    /// sample value, y strictly increasing to 1.0.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let mut j = i + 1;
            while j < self.sorted.len() && self.sorted[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n));
            i = j;
        }
        out
    }

    /// Evaluates the CDF at `k` evenly spaced x positions spanning
    /// `[lo, hi]` — the sampling used to lay CDF lines onto a shared axis
    /// for two-bin comparison plots.
    pub fn sampled(&self, lo: f64, hi: f64, k: usize) -> Vec<(f64, f64)> {
        assert!(k >= 2 && hi >= lo);
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Kolmogorov–Smirnov distance to another empirical CDF — a convenient
    /// scalar for "how separated are the two bins" in tests.
    pub fn ks_distance(&self, other: &EmpiricalCdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(2.5), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(99.0), 1.0);
    }

    #[test]
    fn survival_is_complement() {
        let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0]).unwrap();
        assert!((cdf.survival(2.0) - (1.0 - cdf.eval(2.0))).abs() < 1e-15);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(cdf.quantile(0.25), Some(10.0));
        assert_eq!(cdf.quantile(0.5), Some(20.0));
        assert_eq!(cdf.quantile(1.0), Some(40.0));
        assert_eq!(cdf.quantile(0.0), None);
        assert_eq!(cdf.quantile(1.5), None);
    }

    #[test]
    fn quantile_inverts_eval() {
        let cdf = EmpiricalCdf::new(&[5.0, 1.0, 9.0, 3.0, 7.0]).unwrap();
        for &q in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            let v = cdf.quantile(q).unwrap();
            assert!(cdf.eval(v) >= q);
        }
    }

    #[test]
    fn points_end_at_one() {
        let cdf = EmpiricalCdf::new(&[2.0, 2.0, 5.0]).unwrap();
        let pts = cdf.points();
        assert_eq!(pts, vec![(2.0, 2.0 / 3.0), (5.0, 1.0)]);
    }

    #[test]
    fn sampled_is_monotone() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]).unwrap();
        let pts = cdf.sampled(0.0, 10.0, 21);
        assert_eq!(pts.len(), 21);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(EmpiricalCdf::new(&[]).is_none());
        assert!(EmpiricalCdf::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn ks_distance_zero_for_same_sample() {
        let a = EmpiricalCdf::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_distance(&a), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_supports() {
        let a = EmpiricalCdf::new(&[1.0, 2.0]).unwrap();
        let b = EmpiricalCdf::new(&[10.0, 20.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 1.0);
    }
}
