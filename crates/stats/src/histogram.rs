//! Linear- and log-binned histograms.
//!
//! The paper uses linear histograms for worker lifetimes and working days
//! (Fig. 30) and log-log histograms for cluster sizes (Figs. 6, 7) and
//! workload/hours distributions (Fig. 29).

/// Binning scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistogramKind {
    /// `bins` equal-width bins spanning `[lo, hi]`.
    Linear {
        /// Lower edge of the first bin.
        lo: f64,
        /// Upper edge of the last bin.
        hi: f64,
    },
    /// Bins with logarithmically spaced edges spanning `[lo, hi]`,
    /// `lo > 0`. Bin `i` covers `[lo·r^i, lo·r^(i+1))`.
    Log {
        /// Lower edge (must be positive).
        lo: f64,
        /// Upper edge.
        hi: f64,
    },
}

/// A fixed-bin histogram over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    kind: HistogramKind,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins of the given kind.
    ///
    /// # Panics
    /// If `bins == 0`, `hi ≤ lo`, or a log histogram has `lo ≤ 0`.
    pub fn new(kind: HistogramKind, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        match kind {
            HistogramKind::Linear { lo, hi } => assert!(hi > lo, "hi must exceed lo"),
            HistogramKind::Log { lo, hi } => {
                assert!(lo > 0.0 && hi > lo, "log bins need 0 < lo < hi")
            }
        }
        Histogram { kind, counts: vec![0; bins], below: 0, above: 0, total: 0 }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        match self.bin_of(x) {
            BinPos::Below => self.below += 1,
            BinPos::Above => self.above += 1,
            BinPos::In(i) => self.counts[i] += 1,
        }
    }

    /// Adds every observation in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    fn bin_of(&self, x: f64) -> BinPos {
        let n = self.counts.len() as f64;
        let frac = match self.kind {
            HistogramKind::Linear { lo, hi } => (x - lo) / (hi - lo),
            HistogramKind::Log { lo, hi } => {
                if x <= 0.0 {
                    return BinPos::Below;
                }
                (x.ln() - lo.ln()) / (hi.ln() - lo.ln())
            }
        };
        if frac < 0.0 || x.is_nan() {
            BinPos::Below
        } else if frac >= 1.0 {
            // The top edge itself is counted in the last bin.
            let is_top = match self.kind {
                HistogramKind::Linear { hi, .. } | HistogramKind::Log { hi, .. } => x == hi,
            };
            if is_top {
                BinPos::In(self.counts.len() - 1)
            } else {
                BinPos::Above
            }
        } else {
            BinPos::In(((frac * n) as usize).min(self.counts.len() - 1))
        }
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the first bin (including NaN).
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations at or above the top edge (exclusive of the edge itself).
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Total observations offered, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let n = self.counts.len() as f64;
        match self.kind {
            HistogramKind::Linear { lo, hi } => {
                let w = (hi - lo) / n;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            HistogramKind::Log { lo, hi } => {
                let r = (hi / lo).powf(1.0 / n);
                (lo * r.powi(i as i32), lo * r.powi(i as i32 + 1))
            }
        }
    }

    /// `(bin center, count)` pairs for plotting. Log histograms use the
    /// geometric center.
    pub fn points(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| {
                let (lo, hi) = self.bin_edges(i);
                let center = match self.kind {
                    HistogramKind::Linear { .. } => 0.5 * (lo + hi),
                    HistogramKind::Log { .. } => (lo * hi).sqrt(),
                };
                (center, self.counts[i])
            })
            .collect()
    }
}

enum BinPos {
    Below,
    In(usize),
    Above,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 10.0 }, 5);
        h.extend(&[0.0, 1.9, 2.0, 9.9, 10.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn mass_conservation() {
        let mut h = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 1.0 }, 7);
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.003_7) % 1.4 - 0.1).collect();
        h.extend(&xs);
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 1.0 }, 2);
        h.extend(&[-0.5, 0.5, 1.5, f64::NAN]);
        assert_eq!(h.underflow(), 2, "negative and NaN");
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn log_binning_decades() {
        let mut h = Histogram::new(HistogramKind::Log { lo: 1.0, hi: 1000.0 }, 3);
        h.extend(&[1.0, 5.0, 10.0, 99.0, 100.0, 999.0, 1000.0]);
        // Decade bins: [1,10), [10,100), [100,1000].
        assert_eq!(h.counts(), &[2, 2, 3]);
    }

    #[test]
    fn log_binning_rejects_nonpositive_samples() {
        let mut h = Histogram::new(HistogramKind::Log { lo: 1.0, hi: 100.0 }, 2);
        h.extend(&[0.0, -3.0, 50.0]);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.counts(), &[0, 1]);
    }

    #[test]
    fn bin_edges_linear() {
        let h = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 10.0 }, 4);
        assert_eq!(h.bin_edges(0), (0.0, 2.5));
        assert_eq!(h.bin_edges(3), (7.5, 10.0));
    }

    #[test]
    fn bin_edges_log() {
        let h = Histogram::new(HistogramKind::Log { lo: 1.0, hi: 100.0 }, 2);
        let (lo, hi) = h.bin_edges(0);
        assert!((lo - 1.0).abs() < 1e-12);
        assert!((hi - 10.0).abs() < 1e-9);
    }

    #[test]
    fn points_centers() {
        let mut h = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 4.0 }, 2);
        h.extend(&[1.0, 3.0, 3.5]);
        assert_eq!(h.points(), vec![(1.0, 1), (3.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 1.0 }, 0);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn log_with_zero_lo_panics() {
        let _ = Histogram::new(HistogramKind::Log { lo: 0.0, hi: 1.0 }, 3);
    }
}
