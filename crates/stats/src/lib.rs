//! # crowd-stats
//!
//! Statistics substrate for the crowdsourcing-marketplace study
//! reproduction. Everything the paper's quantitative methodology needs is
//! implemented here from first principles:
//!
//! * descriptive statistics (means, medians, percentiles) — used for every
//!   metric summary;
//! * Welch's t-test with an exact Student-t p-value (via the regularized
//!   incomplete beta function) — the paper's significance test (§4.2,
//!   threshold p < 0.01);
//! * empirical CDFs — the paper's visualization of feature/metric
//!   correlations (Figs. 14, 25);
//! * linear and logarithmic histograms — Figs. 6, 7, 29, 30;
//! * Pearson/Spearman correlation;
//! * the §4.2 median-split binning methodology.
//!
//! No external dependencies; all routines are deterministic and unit-tested
//! against published reference values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod bootstrap;
pub mod cdf;
pub mod correlation;
pub mod descriptive;
pub mod histogram;
pub mod mannwhitney;
pub mod special;
pub mod ttest;

pub use binning::{median_split, MedianSplit};
pub use bootstrap::{bootstrap_ci, bootstrap_diff_ci, BootstrapCi};
pub use cdf::EmpiricalCdf;
pub use correlation::{pearson, spearman};
pub use descriptive::{mean, median, percentile, stddev, variance, Summary};
pub use histogram::{Histogram, HistogramKind};
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use ttest::{welch_t_test, TTestResult};
