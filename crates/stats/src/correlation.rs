//! Pearson and Spearman correlation coefficients.
//!
//! Used by the exploratory phase of the §4.2 correlation analyses and by
//! tests asserting the simulator's causal structure surfaces in the data.

use crate::descriptive::mean;

/// Pearson product-moment correlation; `None` when the inputs differ in
/// length, have fewer than two points, or either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Average ranks (1-based) with ties sharing the mean of their positions.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..j (0-based) share rank mean of (i+1)..=j.
        let shared = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            out[idx] = shared;
        }
        i = j;
    }
    out
}

/// Spearman rank correlation (Pearson over average ranks); `None` under the
/// same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        close(pearson(&xs, &ys).unwrap(), 1.0, 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        close(pearson(&xs, &neg).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        // numpy.corrcoef([1,2,3,4,5], [2,1,4,3,5])[0,1] = 0.8
        let r = pearson(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0, 1.0, 4.0, 3.0, 5.0]).unwrap();
        close(r, 0.8, 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none(), "constant side");
    }

    #[test]
    fn ranks_with_ties() {
        // [10, 20, 20, 30] → ranks [1, 2.5, 2.5, 4]
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(ranks(&[]), Vec::<f64>::new());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // Monotone transform gives ρ = 1 even though Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        close(spearman(&xs, &ys).unwrap(), 1.0, 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_known_value() {
        // scipy.stats.spearmanr([1,2,3,4,5], [5,6,7,8,7]).statistic = 0.8207826816681233
        let r = spearman(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5.0, 6.0, 7.0, 8.0, 7.0]).unwrap();
        close(r, 0.820_782_681_668_123_3, 1e-12);
    }
}
