//! Mann–Whitney U test (Wilcoxon rank-sum), normal approximation with tie
//! correction.
//!
//! The study's metrics are heavy-tailed (pickup times span seconds to
//! months), where Welch's t on raw values loses power to outliers; the
//! rank-sum test is the standard nonparametric companion. It is exposed
//! alongside [`crate::ttest::welch_t_test`] so analyses can report both.

use crate::correlation::ranks;
use crate::special::normal_two_sided;

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// U statistic of the first sample.
    pub u: f64,
    /// Standardized statistic (normal approximation, tie-corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Sample sizes.
    pub n: (usize, usize),
}

impl MannWhitneyResult {
    /// Significant at the paper's α = 0.01.
    pub fn significant(&self) -> bool {
        self.p_value < 0.01
    }
}

/// Two-sided Mann–Whitney U test. `None` when either sample is empty or
/// all values across both samples are identical.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitneyResult> {
    let (na, nb) = (a.len(), b.len());
    if na == 0 || nb == 0 {
        return None;
    }
    // Joint ranking with average ranks for ties.
    let mut joint: Vec<f64> = Vec::with_capacity(na + nb);
    joint.extend_from_slice(a);
    joint.extend_from_slice(b);
    let r = ranks(&joint);
    let ra: f64 = r[..na].iter().sum();
    let u = ra - (na * (na + 1)) as f64 / 2.0;

    let n = (na + nb) as f64;
    let mean_u = (na as f64 * nb as f64) / 2.0;
    // Tie correction: Σ (t³ − t) over tie groups.
    let mut sorted = joint.clone();
    sorted.sort_by(f64::total_cmp);
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }
    let var_u = (na as f64 * nb as f64 / 12.0) * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        return None; // everything tied
    }
    // Continuity correction toward the mean. At the mean itself there is
    // nothing to correct (f64::signum(0.0) is 1.0, which would push both
    // swap directions to the same side and break z's antisymmetry).
    let d = u - mean_u;
    let correction = if d == 0.0 { 0.0 } else { 0.5 * d.signum() };
    let z = (d - correction) / var_u.sqrt();
    let p_value = normal_two_sided(z);
    Some(MannWhitneyResult { u, z, p_value, n: (na, nb) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_not_significant() {
        let a: Vec<f64> = (0..60).map(|i| (i % 12) as f64).collect();
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
        assert!(!r.significant());
    }

    #[test]
    fn clear_shift_is_significant() {
        let a: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 20.0 + (i % 10) as f64).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.significant(), "p = {}", r.p_value);
        assert!(r.u < 100.0, "a ranks below b: U = {}", r.u);
    }

    #[test]
    fn u_statistics_sum_to_product() {
        // U_a + U_b = n_a · n_b (a fundamental identity).
        let a = [1.0, 5.0, 9.0, 13.0];
        let b = [2.0, 6.0, 10.0];
        let ua = mann_whitney_u(&a, &b).unwrap().u;
        let ub = mann_whitney_u(&b, &a).unwrap().u;
        assert!((ua + ub - 12.0).abs() < 1e-9, "{ua} + {ub}");
    }

    #[test]
    fn known_small_example() {
        // a = [1,2,3], b = [4,5,6]: U_a = 0 (every a below every b).
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(r.u, 0.0);
        // a = [4,5,6], b = [1,2,3]: U_a = 9.
        let r2 = mann_whitney_u(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(r2.u, 9.0);
    }

    #[test]
    fn robust_to_one_huge_outlier() {
        // Welch's t gets dragged by the outlier; rank-sum should still see
        // two similar distributions.
        let mut a: Vec<f64> = (0..60).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| (i % 10) as f64 + 0.01).collect();
        a[0] = 1.0e9;
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(!r.significant(), "p = {}", r.p_value);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(mann_whitney_u(&[3.0, 3.0], &[3.0, 3.0]).is_none(), "all tied");
    }

    #[test]
    fn tie_heavy_data_still_works() {
        let a = [1.0, 1.0, 1.0, 2.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0, 3.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }
}
