//! Welch's unequal-variances t-test.
//!
//! The paper's §4.2 methodology: "We perform a t-test to check whether the
//! metric value distribution in our two feature-value-separated bins is
//! statistically significant. We use a threshold p-value of 0.01." Bins
//! have different sizes and variances, so Welch's form is the right one.

use crate::descriptive::{mean, variance};
use crate::special::student_t_two_sided;

/// The paper's significance threshold (§4.2).
pub const PAPER_ALPHA: f64 = 0.01;

/// Outcome of a two-sample Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Sample sizes.
    pub n: (usize, usize),
    /// Sample means.
    pub means: (f64, f64),
}

impl TTestResult {
    /// True when the difference is significant at the paper's α = 0.01.
    pub fn significant(&self) -> bool {
        self.p_value < PAPER_ALPHA
    }

    /// True when significant at a caller-chosen α.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Welch t-test between two samples.
///
/// Returns `None` when either sample has fewer than two observations or
/// when both samples are constant and equal (no variance, no difference —
/// the statistic is undefined). Two constant samples with *different*
/// values report `p = 0` (infinitely strong evidence under this model).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    let (na, nb) = (a.len(), b.len());
    if na < 2 || nb < 2 {
        return None;
    }
    let (ma, mb) = (mean(a)?, mean(b)?);
    let (va, vb) = (variance(a)?, variance(b)?);
    let sa = va / na as f64;
    let sb = vb / nb as f64;
    let se2 = sa + sb;
    if se2 == 0.0 {
        if ma == mb {
            return None;
        }
        return Some(TTestResult {
            t: if ma > mb { f64::INFINITY } else { f64::NEG_INFINITY },
            df: (na + nb - 2) as f64,
            p_value: 0.0,
            n: (na, nb),
            means: (ma, mb),
        });
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite approximation.
    let df = se2 * se2 / (sa * sa / (na as f64 - 1.0) + sb * sb / (nb as f64 - 1.0));
    let p_value = student_t_two_sided(t, df);
    Some(TTestResult { t, df, p_value, n: (na, nb), means: (ma, mb) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&xs, &xs).unwrap();
        close(r.t, 0.0, 1e-12);
        close(r.p_value, 1.0, 1e-12);
        assert!(!r.significant());
    }

    /// Two-sided tail of Student's t via Simpson integration of the pdf —
    /// an implementation independent of the incomplete-beta path, used to
    /// cross-validate p-values.
    fn t_two_sided_by_integration(t: f64, df: f64) -> f64 {
        use crate::special::ln_gamma;
        let ln_norm = ln_gamma((df + 1.0) / 2.0)
            - ln_gamma(df / 2.0)
            - 0.5 * (df * std::f64::consts::PI).ln();
        let pdf = |x: f64| (ln_norm - (df + 1.0) / 2.0 * (1.0 + x * x / df).ln()).exp();
        // Central mass on [-|t|, |t|] via Simpson with many panels.
        let a = -t.abs();
        let b = t.abs();
        let n = 20_000;
        let h = (b - a) / n as f64;
        let mut s = pdf(a) + pdf(b);
        for i in 1..n {
            let x = a + h * i as f64;
            s += pdf(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        1.0 - s * h / 3.0
    }

    #[test]
    fn welch_statistic_and_df_hand_derived() {
        // a = [1..5]: mean 3, var 2.5, n 5 → sa = 0.5
        // b = 2·a:    mean 6, var 10,  n 5 → sb = 2.0
        // t = (3−6)/√2.5 = −1.897366…
        // df = 2.5² / (0.5²/4 + 2²/4) = 6.25/1.0625 = 100/17
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b).unwrap();
        close(r.t, -3.0 / 2.5f64.sqrt(), 1e-12);
        close(r.df, 100.0 / 17.0, 1e-12);
        close(r.p_value, t_two_sided_by_integration(r.t, r.df), 1e-7);
    }

    #[test]
    fn welch_unequal_sizes_hand_derived() {
        // a = [10,11,9,10,10,12]: mean 31/3, var 16/15, n 6 → sa = 8/45
        // b = [14,15,13]:         mean 14,   var 1,     n 3 → sb = 1/3
        // se² = 8/45 + 1/3 = 23/45 ; t = (31/3 − 14)/√(23/45)
        let a = [10.0, 11.0, 9.0, 10.0, 10.0, 12.0];
        let b = [14.0, 15.0, 13.0];
        let r = welch_t_test(&a, &b).unwrap();
        let se2: f64 = 23.0 / 45.0;
        close(r.t, (31.0 / 3.0 - 14.0) / se2.sqrt(), 1e-12);
        let df = se2 * se2 / ((8.0f64 / 45.0).powi(2) / 5.0 + (1.0f64 / 3.0).powi(2) / 2.0);
        close(r.df, df, 1e-12);
        close(r.p_value, t_two_sided_by_integration(r.t, r.df), 1e-7);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn clearly_separated_samples_are_significant() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 20.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.significant());
        assert!(r.p_value < 1e-20);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[], &[]).is_none());
        // Equal constants: undefined.
        assert!(welch_t_test(&[3.0, 3.0], &[3.0, 3.0]).is_none());
        // Different constants: p = 0.
        let r = welch_t_test(&[3.0, 3.0], &[4.0, 4.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.significant());
        assert!(r.t.is_infinite() && r.t < 0.0);
    }

    #[test]
    fn direction_of_t() {
        let r = welch_t_test(&[5.0, 6.0, 7.0], &[1.0, 2.0, 3.0]).unwrap();
        assert!(r.t > 0.0, "first sample larger ⇒ positive t");
        assert_eq!(r.means.0, 6.0);
        assert_eq!(r.means.1, 2.0);
        assert_eq!(r.n, (3, 3));
    }
}
