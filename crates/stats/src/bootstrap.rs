//! Percentile bootstrap confidence intervals.
//!
//! Used by the A/B testing harness (`crowd-ab`) — the paper's stated
//! future work ("with full-fledged A/B testing, we may be able to solidify
//! our correlation and predictive claims with further causation-based
//! evidence", §7) — to put uncertainty bands around differences of
//! medians, which have no closed-form distribution.

/// A two-sided confidence interval from a bootstrap distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (the statistic on the original sample).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level used, e.g. 0.95.
    pub level: f64,
    /// Resamples drawn.
    pub resamples: usize,
}

impl BootstrapCi {
    /// True when the interval excludes zero — the usual significance read
    /// for a difference statistic.
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Deterministic xorshift for resampling (keeps this crate rand-free).
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Percentile-bootstrap CI for `statistic` of one sample. `None` for empty
/// input, `resamples == 0`, or a level outside `(0, 1)`.
pub fn bootstrap_ci(
    xs: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if xs.is_empty() || resamples == 0 || !(0.0 < level && level < 1.0) {
        return None;
    }
    let mut rng = Xs(seed | 1);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.below(xs.len())];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let at = |q: f64| {
        let idx = ((q * resamples as f64) as usize).min(resamples - 1);
        stats[idx]
    };
    Some(BootstrapCi {
        estimate: statistic(xs),
        lo: at(alpha),
        hi: at(1.0 - alpha),
        level,
        resamples,
    })
}

/// Percentile-bootstrap CI for `statistic(a) − statistic(b)` over two
/// independent samples (resampled independently).
pub fn bootstrap_diff_ci(
    a: &[f64],
    b: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if a.is_empty() || b.is_empty() || resamples == 0 || !(0.0 < level && level < 1.0) {
        return None;
    }
    let mut rng = Xs(seed | 1);
    let mut stats = Vec::with_capacity(resamples);
    let mut ba = vec![0.0; a.len()];
    let mut bb = vec![0.0; b.len()];
    for _ in 0..resamples {
        for slot in ba.iter_mut() {
            *slot = a[rng.below(a.len())];
        }
        for slot in bb.iter_mut() {
            *slot = b[rng.below(b.len())];
        }
        stats.push(statistic(&ba) - statistic(&bb));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let at = |q: f64| {
        let idx = ((q * resamples as f64) as usize).min(resamples - 1);
        stats[idx]
    };
    Some(BootstrapCi {
        estimate: statistic(a) - statistic(b),
        lo: at(alpha),
        hi: at(1.0 - alpha),
        level,
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, median};

    fn med(xs: &[f64]) -> f64 {
        median(xs).unwrap()
    }

    #[test]
    fn ci_brackets_the_estimate() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        let ci = bootstrap_ci(&xs, med, 500, 0.95, 42).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert_eq!(ci.resamples, 500);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 11) as f64).collect();
        let large: Vec<f64> = (0..2_000).map(|i| (i % 11) as f64).collect();
        let ci_s = bootstrap_ci(&small, |x| mean(x).unwrap(), 400, 0.95, 1).unwrap();
        let ci_l = bootstrap_ci(&large, |x| mean(x).unwrap(), 400, 0.95, 1).unwrap();
        assert!(ci_l.width() < ci_s.width(), "{} < {}", ci_l.width(), ci_s.width());
    }

    #[test]
    fn diff_ci_detects_a_real_shift() {
        let a: Vec<f64> = (0..150).map(|i| 10.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..150).map(|i| 4.0 + (i % 7) as f64).collect();
        let ci = bootstrap_diff_ci(&a, &b, med, 500, 0.95, 7).unwrap();
        assert!((ci.estimate - 6.0).abs() < 1e-9);
        assert!(ci.excludes_zero());
        assert!(ci.lo > 3.0 && ci.hi < 9.0, "{ci:?}");
    }

    #[test]
    fn diff_ci_covers_zero_for_identical_populations() {
        let a: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let ci = bootstrap_diff_ci(&a, &a, med, 500, 0.95, 9).unwrap();
        assert!(!ci.excludes_zero(), "{ci:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let xs: Vec<f64> = (0..80).map(|i| (i % 9) as f64).collect();
        let a = bootstrap_ci(&xs, med, 300, 0.9, 5).unwrap();
        let b = bootstrap_ci(&xs, med, 300, 0.9, 5).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&xs, med, 300, 0.9, 6).unwrap();
        assert!(a != c || a.estimate == c.estimate);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(bootstrap_ci(&[], med, 100, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], med, 0, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], med, 100, 1.5, 1).is_none());
        assert!(bootstrap_diff_ci(&[], &[1.0], med, 100, 0.95, 1).is_none());
    }
}
