//! Descriptive statistics: means, medians, percentiles, moments.
//!
//! The paper summarizes every metric by its median (robust to the heavy
//! tails of pickup-times and task-times) and occasionally by means (e.g.
//! mean trust per source, §5.1).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (n−1 denominator); `None` when `n < 2`.
///
/// Uses Welford's single-pass algorithm for numerical stability on the
/// large, wide-ranged duration data this crate processes.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let mut m = 0.0f64;
    let mut m2 = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - m;
        m += delta / (i + 1) as f64;
        m2 += delta * (x - m);
    }
    Some(m2 / (xs.len() - 1) as f64)
}

/// Sample standard deviation; `None` when `n < 2`.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (average of the two central order statistics for even `n`);
/// `None` for an empty slice. Does not require sorted input.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) with linear interpolation between
/// order statistics (the "linear" / R-7 convention); `None` when empty or
/// `p` out of range.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over data already sorted ascending; `None` when empty or
/// `p` out of range.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median of a pre-sorted slice; `None` for an empty slice.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    percentile_sorted(sorted, 50.0)
}

/// Median via selection (expected O(n), no full sort), reordering `xs` in
/// place; `None` for an empty slice.
///
/// Bit-identical to [`median`]: both central order statistics are located
/// with `select_nth_unstable_by` and interpolated with the same R-7
/// expression `lo + (hi − lo) · frac` the sorting path uses. Prefer this
/// over [`median`] when the caller owns a scratch buffer — `median` clones
/// and fully sorts its input on every call.
pub fn median_inplace(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    if n == 1 {
        return Some(xs[0]);
    }
    let mid = n / 2;
    if n % 2 == 1 {
        let (_, m, _) = xs.select_nth_unstable_by(mid, f64::total_cmp);
        Some(*m)
    } else {
        // Even n: the upper central statistic via selection, the lower one
        // as the max of the left partition.
        let (below, hi, _) = xs.select_nth_unstable_by(mid, f64::total_cmp);
        let hi = *hi;
        let lo = below.iter().copied().max_by(f64::total_cmp).expect("n ≥ 2");
        Some(lo + (hi - lo) * 0.5)
    }
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub stddev: f64,
}

impl Summary {
    /// Computes the summary; `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            n: sorted.len(),
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0)?,
            median: percentile_sorted(&sorted, 50.0)?,
            q3: percentile_sorted(&sorted, 75.0)?,
            max: sorted[sorted.len() - 1],
            mean: mean(xs).unwrap(),
            stddev: stddev(xs).unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_matches_reference() {
        // Sample variance of [2, 4, 4, 4, 5, 5, 7, 9] is 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = variance(&xs).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), None);
    }

    #[test]
    fn variance_is_stable_under_large_offsets() {
        let base = [1.0, 2.0, 3.0, 4.0];
        let shifted: Vec<f64> = base.iter().map(|x| x + 1e12).collect();
        let v1 = variance(&base).unwrap();
        let v2 = variance(&shifted).unwrap();
        assert!((v1 - v2).abs() < 1e-3, "Welford should survive the offset: {v1} vs {v2}");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        // R-7: rank = 0.25 * 3 = 0.75 → 1 + 0.75*(2-1) = 1.75
        assert_eq!(percentile(&xs, 25.0), Some(1.75));
        assert_eq!(percentile(&xs, 101.0), None);
        assert_eq!(percentile(&xs, -1.0), None);
    }

    #[test]
    fn median_inplace_matches_median_bit_for_bit() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![7.5],
            vec![3.0, 1.0, 2.0],
            vec![4.0, 1.0, 2.0, 3.0],
            vec![0.1, 0.2, 0.30000000000000004, 0.4, 1e-12, 1e12],
            (0..101).map(|i| ((i * 37) % 101) as f64 / 7.0).collect(),
            (0..100).map(|i| ((i * 61) % 100) as f64 * 1.5e-3).collect(),
        ];
        for xs in cases {
            let expected = median(&xs);
            let mut scratch = xs.clone();
            let got = median_inplace(&mut scratch);
            match (expected, got) {
                (None, None) => {}
                (Some(e), Some(g)) => assert_eq!(e.to_bits(), g.to_bits(), "{xs:?}"),
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 33.0), Some(7.0));
    }

    #[test]
    fn sorted_variants_handle_empty_and_degenerate_input() {
        // These used to assert (and abort the process) on empty slices;
        // the analytics layer feeds them filtered piles that can
        // legitimately come out empty, so they must degrade to None.
        assert_eq!(percentile_sorted(&[], 50.0), None);
        assert_eq!(median_sorted(&[]), None);
        assert_eq!(percentile_sorted(&[1.0, 2.0], -0.5), None);
        assert_eq!(percentile_sorted(&[1.0, 2.0], 100.5), None);
        assert_eq!(percentile_sorted(&[4.0], 99.0), Some(4.0));
        assert_eq!(median_sorted(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn sorted_variants_match_unsorted_on_sorted_input() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        for p in [0.0, 12.5, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&sorted, p), percentile(&sorted, p), "p = {p}");
        }
        assert_eq!(median_sorted(&sorted), median(&sorted));
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 22.0);
        assert!(s.q1 < s.median && s.median < s.q3);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_handles_single_value() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }
}
