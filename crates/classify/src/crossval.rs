//! k-fold cross-validation with exact and ±tolerance bucket accuracy
//! (§4.9 reports both exact-bucket accuracy and accuracy "if we allow an
//! error tolerance of 1 bucket").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::tree::{DecisionTree, TreeParams};

/// Cross-validation outcome, averaged across folds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvReport {
    /// Mean exact-bucket accuracy.
    pub accuracy: f64,
    /// Mean accuracy allowing the prediction to be off by one bucket.
    pub accuracy_within_1: f64,
    /// Number of folds actually evaluated.
    pub folds: usize,
    /// Total held-out predictions made.
    pub n_test: usize,
}

/// Runs `k`-fold cross-validation of a decision tree on `(x, y)` with
/// `n_classes` buckets. Rows are shuffled with `seed` before folding, so
/// results are deterministic per seed.
///
/// # Panics
/// If `k < 2` or the data is empty/misaligned.
pub fn k_fold(
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
    params: &TreeParams,
) -> CvReport {
    assert!(k >= 2, "need at least 2 folds");
    assert!(!x.is_empty() && x.len() == y.len(), "need non-empty aligned data");
    let mut order: Vec<usize> = (0..x.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut exact = 0usize;
    let mut within1 = 0usize;
    let mut n_test = 0usize;
    let mut folds = 0usize;

    for fold in 0..k {
        let test_set: Vec<usize> = order.iter().copied().skip(fold).step_by(k).collect();
        if test_set.is_empty() {
            continue;
        }
        let in_test = {
            let mut mask = vec![false; x.len()];
            for &i in &test_set {
                mask[i] = true;
            }
            mask
        };
        let train_x: Vec<Vec<f64>> =
            order.iter().filter(|&&i| !in_test[i]).map(|&i| x[i].clone()).collect();
        let train_y: Vec<usize> = order.iter().filter(|&&i| !in_test[i]).map(|&i| y[i]).collect();
        if train_x.is_empty() {
            continue;
        }
        let tree = DecisionTree::fit(&train_x, &train_y, n_classes, params);
        for &i in &test_set {
            let pred = tree.predict(&x[i]);
            if pred == y[i] {
                exact += 1;
            }
            if pred.abs_diff(y[i]) <= 1 {
                within1 += 1;
            }
            n_test += 1;
        }
        folds += 1;
    }

    CvReport {
        accuracy: exact as f64 / n_test.max(1) as f64,
        accuracy_within_1: within1 as f64 / n_test.max(1) as f64,
        folds,
        n_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_learnable_data_scores_high() {
        let x: Vec<Vec<f64>> = (0..500).map(|i| vec![(i % 100) as f64]).collect();
        let y: Vec<usize> = (0..500).map(|i| (i % 100) / 10).collect();
        let r = k_fold(&x, &y, 10, 5, 1, &TreeParams::default());
        assert!(r.accuracy > 0.95, "accuracy {}", r.accuracy);
        assert!(r.accuracy_within_1 >= r.accuracy);
        assert_eq!(r.folds, 5);
        assert_eq!(r.n_test, 500);
    }

    #[test]
    fn pure_noise_scores_near_chance() {
        // Feature carries no signal about the label.
        let x: Vec<Vec<f64>> = (0..600).map(|i| vec![((i * 31) % 17) as f64]).collect();
        let y: Vec<usize> = (0..600).map(|i| (i * 7919 + 13) % 10).collect();
        let r = k_fold(&x, &y, 10, 5, 2, &TreeParams::default());
        assert!(r.accuracy < 0.35, "near chance (10%): {}", r.accuracy);
    }

    #[test]
    fn within_1_catches_adjacent_errors() {
        // Labels = bucket of a noisy copy of the feature: exact accuracy
        // suffers, ±1 should be much higher.
        let x: Vec<Vec<f64>> = (0..800).map(|i| vec![(i % 100) as f64]).collect();
        let y: Vec<usize> = (0..800)
            .map(|i| {
                let noisy = (i % 100) as f64 + if i % 3 == 0 { 9.0 } else { 0.0 };
                ((noisy / 10.0) as usize).min(9)
            })
            .collect();
        let r = k_fold(&x, &y, 10, 5, 3, &TreeParams::default());
        assert!(
            r.accuracy_within_1 > r.accuracy + 0.1,
            "tolerance helps: {} vs {}",
            r.accuracy_within_1,
            r.accuracy
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 40) as f64]).collect();
        let y: Vec<usize> = (0..200).map(|i| (i % 40) / 10).collect();
        let a = k_fold(&x, &y, 4, 5, 42, &TreeParams::default());
        let b = k_fold(&x, &y, 4, 5, 42, &TreeParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn every_row_tested_once() {
        let x: Vec<Vec<f64>> = (0..103).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..103).map(|i| i % 3).collect();
        let r = k_fold(&x, &y, 3, 5, 9, &TreeParams::default());
        assert_eq!(r.n_test, 103);
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn one_fold_rejected() {
        let _ = k_fold(&[vec![1.0]], &[0], 2, 1, 0, &TreeParams::default());
    }
}
