//! # crowd-classify
//!
//! The §4.9 predictive setting: "we bucketize the range of values into 10
//! buckets, and try to predict which bucket any given task will fall into
//! … We run a simple decision tree classifier … We perform a 5-fold
//! cross-validation to test the accuracy of our models."
//!
//! This crate provides the three pieces: [`bucketize`] (by range and by
//! percentiles), a CART [`tree::DecisionTree`] with Gini impurity, and
//! [`crossval`] with exact and ±1-bucket tolerance accuracy.
//!
//! ```
//! use crowd_classify::{bucketize::Bucketization, tree::DecisionTree, crossval::k_fold};
//!
//! // Metric values → 10 buckets by range.
//! let metric: Vec<f64> = (0..200).map(|i| (i % 100) as f64).collect();
//! let buckets = Bucketization::by_range(&metric, 10).unwrap();
//! let y: Vec<usize> = metric.iter().map(|&v| buckets.bucket_of(v)).collect();
//! // One informative feature: the metric itself, plus a noise column.
//! let x: Vec<Vec<f64>> = metric.iter().enumerate()
//!     .map(|(i, &v)| vec![v, (i % 7) as f64]).collect();
//! let report = k_fold(&x, &y, 10, 5, 0xC0DE, &Default::default());
//! assert!(report.accuracy > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucketize;
pub mod crossval;
pub mod tree;

pub use bucketize::Bucketization;
pub use crossval::{k_fold, CvReport};
pub use tree::{DecisionTree, TreeParams};
