//! Metric bucketization (§4.9): by range and by percentiles.

/// A bucketization of a metric's value range into `n` buckets, described —
/// as the paper reports it — by the upper bound of each bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucketization {
    /// Inclusive upper bounds, ascending; the last equals the data max.
    pub upper_bounds: Vec<f64>,
    lo: f64,
}

impl Bucketization {
    /// Evenly divides `[min, max]` into `n` buckets of uniform width
    /// ("bucketization by range"). `None` for empty input, `n == 0`, or a
    /// constant metric.
    pub fn by_range(values: &[f64], n: usize) -> Option<Bucketization> {
        if values.is_empty() || n == 0 {
            return None;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo || hi.is_nan() || lo.is_nan() {
            return None;
        }
        let width = (hi - lo) / n as f64;
        let upper_bounds =
            (1..=n).map(|i| if i == n { hi } else { lo + width * i as f64 }).collect();
        Some(Bucketization { upper_bounds, lo })
    }

    /// Divides the range so each bucket holds roughly equal numbers of
    /// observations ("bucketization by percentiles"). Duplicate bounds
    /// (heavily tied data) are kept — empty buckets may result, exactly as
    /// with the paper's skewed metrics.
    pub fn by_percentiles(values: &[f64], n: usize) -> Option<Bucketization> {
        if values.is_empty() || n == 0 {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        if hi <= lo || hi.is_nan() || lo.is_nan() {
            return None;
        }
        let m = sorted.len();
        let upper_bounds = (1..=n)
            .map(|i| {
                let idx = (i * m / n).saturating_sub(1);
                sorted[idx]
            })
            .collect();
        Some(Bucketization { upper_bounds, lo })
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.upper_bounds.len()
    }

    /// The bucket index of a value: the first bucket whose upper bound is
    /// ≥ `v`. Values beyond the top bound land in the last bucket.
    pub fn bucket_of(&self, v: f64) -> usize {
        self.upper_bounds.partition_point(|&ub| ub < v).min(self.upper_bounds.len() - 1)
    }

    /// Number of observations per bucket.
    pub fn counts(&self, values: &[f64]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_buckets()];
        for &v in values {
            counts[self.bucket_of(v)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_buckets_uniform_width() {
        let values: Vec<f64> = (0..=100).map(f64::from).collect();
        let b = Bucketization::by_range(&values, 10).unwrap();
        assert_eq!(b.n_buckets(), 10);
        assert!((b.upper_bounds[0] - 10.0).abs() < 1e-12);
        assert_eq!(*b.upper_bounds.last().unwrap(), 100.0);
        assert_eq!(b.bucket_of(0.0), 0);
        assert_eq!(b.bucket_of(10.0), 0, "upper bound inclusive");
        assert_eq!(b.bucket_of(10.5), 1);
        assert_eq!(b.bucket_of(100.0), 9);
        assert_eq!(b.bucket_of(999.0), 9, "overflow clamps to last");
    }

    #[test]
    fn range_buckets_on_skewed_data_concentrate_mass() {
        // Like the paper's pickup-time: extreme skew puts nearly everything
        // into bucket 0 (§4.9 reports [2906, 17, 8, 5, 1, 0, 0, 0, 0, 1]).
        let mut values = vec![10.0; 990];
        values.extend((1..=10).map(|i| i as f64 * 1.6e6));
        let b = Bucketization::by_range(&values, 10).unwrap();
        let counts = b.counts(&values);
        assert!(counts[0] >= 990);
        assert_eq!(counts.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn percentile_buckets_balance_counts() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).powi(3)).collect();
        let b = Bucketization::by_percentiles(&values, 10).unwrap();
        let counts = b.counts(&values);
        for &c in &counts {
            assert!((90..=110).contains(&c), "balanced buckets: {counts:?}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Bucketization::by_range(&[], 10).is_none());
        assert!(Bucketization::by_range(&[1.0, 1.0], 10).is_none(), "constant metric");
        assert!(Bucketization::by_percentiles(&[2.0], 5).is_none());
        assert!(Bucketization::by_range(&[1.0, 2.0], 0).is_none());
    }

    #[test]
    fn bounds_are_ascending() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 91) as f64).collect();
        for b in [
            Bucketization::by_range(&values, 10).unwrap(),
            Bucketization::by_percentiles(&values, 10).unwrap(),
        ] {
            for w in b.upper_bounds.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn every_value_lands_in_a_bucket() {
        let values: Vec<f64> = (0..200).map(|i| (i as f64 * 1.7).sin() * 50.0).collect();
        let b = Bucketization::by_percentiles(&values, 7).unwrap();
        let counts = b.counts(&values);
        assert_eq!(counts.iter().sum::<usize>(), values.len());
    }
}
