//! CART decision tree with Gini impurity — the paper's "simple decision
//! tree classifier" (§4.9).

/// Hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples allowed in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 12, min_samples_split: 8, min_samples_leaf: 2 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on rows `x` with class labels `y` (`y[i] < n_classes`).
    ///
    /// # Panics
    /// On empty input, ragged rows, or labels ≥ `n_classes`.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, params: &TreeParams) -> DecisionTree {
        assert!(!x.is_empty() && x.len() == y.len(), "need non-empty aligned data");
        let n_features = x[0].len();
        assert!(x.iter().all(|r| r.len() == n_features), "ragged feature rows");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        let idx: Vec<u32> = (0..x.len() as u32).collect();
        let root = build(x, y, n_classes, &idx, params, 0);
        DecisionTree { root, n_features }
    }

    /// Predicts the class of one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.n_features, "feature arity mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Predicts a batch of rows.
    pub fn predict_all(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of decision nodes + leaves (model size diagnostic).
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn majority(y: &[usize], idx: &[u32], n_classes: usize) -> usize {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[y[i as usize]] += 1;
    }
    counts.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(cls, _)| cls).unwrap_or(0)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn build(
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    idx: &[u32],
    params: &TreeParams,
    depth: usize,
) -> Node {
    let leaf = || Node::Leaf { class: majority(y, idx, n_classes) };
    if depth >= params.max_depth || idx.len() < params.min_samples_split {
        return leaf();
    }
    // Pure node?
    let first = y[idx[0] as usize];
    if idx.iter().all(|&i| y[i as usize] == first) {
        return Node::Leaf { class: first };
    }

    let n_features = x[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)

    // Scratch buffers reused across features.
    let mut order: Vec<u32> = Vec::with_capacity(idx.len());
    #[allow(clippy::needless_range_loop)] // `feature` indexes per-row vectors
    for feature in 0..n_features {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| x[a as usize][feature].total_cmp(&x[b as usize][feature]));
        // Sweep split points between distinct adjacent values.
        let mut left_counts = vec![0usize; n_classes];
        let mut right_counts = vec![0usize; n_classes];
        for &i in order.iter() {
            right_counts[y[i as usize]] += 1;
        }
        let total = order.len();
        for pos in 1..total {
            let moved = order[pos - 1] as usize;
            left_counts[y[moved]] += 1;
            right_counts[y[moved]] -= 1;
            let prev_v = x[moved][feature];
            let next_v = x[order[pos] as usize][feature];
            if prev_v == next_v {
                continue;
            }
            if pos < params.min_samples_leaf || total - pos < params.min_samples_leaf {
                continue;
            }
            let w_left = pos as f64 / total as f64;
            let impurity = w_left * gini(&left_counts, pos)
                + (1.0 - w_left) * gini(&right_counts, total - pos);
            if best.map(|(_, _, b)| impurity < b).unwrap_or(true) {
                best = Some((feature, 0.5 * (prev_v + next_v), impurity));
            }
        }
    }

    let Some((feature, threshold, impurity)) = best else {
        return leaf();
    };
    // No improvement over the parent? Stop.
    let mut parent_counts = vec![0usize; n_classes];
    for &i in idx {
        parent_counts[y[i as usize]] += 1;
    }
    if impurity >= gini(&parent_counts, idx.len()) - 1e-12 {
        return leaf();
    }

    let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
        idx.iter().partition(|&&i| x[i as usize][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return leaf();
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(x, y, n_classes, &left_idx, params, depth + 1)),
        right: Box::new(build(x, y, n_classes, &right_idx, params, depth + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = f64::from((i % 2) as u32);
            let b = f64::from(((i / 2) % 2) as u32);
            // jitter so thresholds are findable
            let ja = a + (i % 5) as f64 * 0.01;
            let jb = b + (i % 7) as f64 * 0.01;
            x.push(vec![ja, jb]);
            y.push((a as usize) ^ (b as usize));
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let tree = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        let correct = x.iter().zip(&y).filter(|(row, &label)| tree.predict(row) == label).count();
        assert!(correct as f64 / x.len() as f64 > 0.98, "xor is tree-learnable");
    }

    #[test]
    fn learns_axis_aligned_split() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let tree = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        assert_eq!(tree.predict(&[10.0]), 0);
        assert_eq!(tree.predict(&[90.0]), 1);
        assert_eq!(tree.predict(&[49.0]), 0);
        assert_eq!(tree.predict(&[51.0]), 1);
    }

    #[test]
    fn pure_labels_give_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i * 3) as f64]).collect();
        let y = vec![1usize; 20];
        let tree = DecisionTree::fit(&x, &y, 3, &TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[5.0, 7.0]), 1);
    }

    #[test]
    fn depth_limit_bounds_tree() {
        let (x, y) = xor_data();
        let stump =
            DecisionTree::fit(&x, &y, 2, &TreeParams { max_depth: 1, ..TreeParams::default() });
        assert!(stump.node_count() <= 3, "a depth-1 tree has at most 3 nodes");
    }

    #[test]
    fn multiclass() {
        let x: Vec<Vec<f64>> = (0..300).map(|i| vec![(i % 30) as f64]).collect();
        let y: Vec<usize> = (0..300).map(|i| (i % 30) / 10).collect();
        let tree = DecisionTree::fit(&x, &y, 3, &TreeParams::default());
        assert_eq!(tree.predict(&[5.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
        assert_eq!(tree.predict(&[25.0]), 2);
    }

    #[test]
    fn constant_features_fall_back_to_majority() {
        let x = vec![vec![1.0]; 10];
        let mut y = vec![0usize; 7];
        y.extend(vec![1usize; 3]);
        let tree = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        assert_eq!(tree.predict(&[1.0]), 0, "majority class");
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn empty_input_panics() {
        let _ = DecisionTree::fit(&[], &[], 2, &TreeParams::default());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_at_predict_panics() {
        let tree = DecisionTree::fit(&[vec![1.0], vec![2.0]], &[0, 1], 2, &TreeParams::default());
        let _ = tree.predict(&[1.0, 2.0]);
    }
}
