//! `repro` — regenerates every table and figure of the VLDB'17
//! crowdsourcing-marketplace study from a simulated dataset.
//!
//! ```text
//! repro [--scale S] [--seed N] [--threads T] [--snapshot-dir DIR]
//!       [--no-snapshot] [--input-dir DIR] [--shards N] [TARGET...]
//!
//! TARGETS (default: all)
//!   fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   fig13 fig14 fig25 fig26 fig27 fig28 fig29 fig30
//!   tables     Tables 1–3 (feature/metric summaries)
//!   predict    §4.9 predictive setting
//!   table4     labor-source registry
//!   load       §3.1 daily-load statistics
//!   trust      §5.4 active-worker trust
//!   sessions   work-session (attention-span) statistics (§5.3)
//!   cohorts    monthly cohort retention (§5.3 extension)
//!   forecast   pickup-latency forecasts per design profile (§6 extension)
//!   redundancy judgments-per-item statistics (§4.1)
//!   summary    dataset headline counts (§2.2)
//! ```

use std::collections::BTreeSet;

use crowd_analytics::design::{drilldown, methodology, metrics, prediction, summary};
use crowd_analytics::marketplace::{arrivals, availability, labels, load, trends};
use crowd_analytics::workers::{geography, lifetimes, sources, workload};
use crowd_analytics::Study;
use crowd_core::time::Timestamp;
use crowd_marketplace::cli::CommonOpts;
use crowd_report::{BarChart, LinePlot, Series, StackedBars, TextTable};

const ALL_TARGETS: [&str; 30] = [
    "summary",
    "fig1",
    "fig2",
    "fig3",
    "load",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "tables",
    "fig25",
    "predict",
    "table4",
    "fig26",
    "fig27",
    "fig28",
    "fig29",
    "fig30",
    "trust",
    "sessions",
    "cohorts",
    "forecast",
    "redundancy",
];

/// Parsed command line. Separated from `main` so the parsing and
/// validation rules are unit-testable without spawning the binary. The
/// `--scale`/`--seed`/`--threads` rules live in [`CommonOpts`], shared
/// with `export`.
#[derive(Debug, Clone, PartialEq, Default)]
struct Args {
    opts: CommonOpts,
    targets: BTreeSet<String>,
    help: bool,
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut out = Args::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        if out.opts.accept(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => out.help = true,
            t => {
                out.targets.insert(t.to_string());
            }
        }
    }
    if out.targets.is_empty() || out.targets.contains("all") {
        out.targets = ALL_TARGETS.iter().map(|s| s.to_string()).collect();
    }
    Ok(out)
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    if args.help {
        println!(
            "usage: repro [--scale S] [--seed N] [--threads T] \
             [--snapshot-dir DIR] [--no-snapshot] [--input-dir DIR] [--shards N] [TARGET...]"
        );
        println!("  --snapshot-dir DIR  cache simulated datasets in DIR (or $CROWD_SNAPSHOT_DIR)");
        println!("  --no-snapshot       always simulate from scratch");
        println!(
            "  --input-dir DIR     load an exported dataset (resilient ingest) instead of simulating"
        );
        println!(
            "  --shards N          partition the instance table into N shards \
             (scan + snapshot layout; results are bit-identical).\n\
             \x20                    With N > 1 the whole build streams: cold runs flush \
             each finished\n\
             \x20                    shard to the snapshot as it completes, warm runs load \
             entities +\n\
             \x20                    enrichment only, and no path holds more than ~one \
             shard of rows."
        );
        println!("targets: all {}", ALL_TARGETS.join(" "));
        return;
    }
    let Args { opts, targets, .. } = args;
    opts.install_thread_pool().unwrap_or_else(|e| die(&e));
    let scale = opts.scale;

    let study = opts.build_study().unwrap_or_else(|e| die(&e));
    // `n_instances`, not `dataset().instances.len()`: a streamed (`--shards`
    // > 1) study keeps the rows on disk and the resident table is empty.
    eprintln!(
        "enriched: {} instances, {} sampled batches, {} clusters\n",
        study.n_instances(),
        study.enriched_batches().count(),
        study.clusters().len()
    );

    // Counts extrapolate linearly with scale when comparing to the paper.
    let x = 1.0 / scale;

    for t in &ALL_TARGETS {
        if !targets.contains(*t) {
            continue;
        }
        match *t {
            "summary" => print_summary(&study, x),
            "fig1" => fig1(&study),
            "fig2" => fig2(&study),
            "fig3" => fig3(&study),
            "load" => print_load(&study, x),
            "fig4" => fig4(&study),
            "fig5" => fig5(&study),
            "fig6" => fig6(&study),
            "fig7" => fig7(&study),
            "fig8" => fig8(&study),
            "fig9" => fig9(&study),
            "fig10" => fig10(&study),
            "fig11" => fig11(&study),
            "fig12" => fig12(&study),
            "fig13" => fig13(&study),
            "fig14" => fig14(&study),
            "tables" => print_tables(&study),
            "fig25" => fig25(&study),
            "predict" => print_prediction(&study),
            "table4" => table4(&study),
            "fig26" => fig26(&study),
            "fig27" => fig27(&study),
            "fig28" => fig28(&study),
            "fig29" => fig29(&study),
            "fig30" => fig30(&study),
            "trust" => print_trust(&study),
            "sessions" => print_sessions(&study),
            "cohorts" => print_cohorts(&study),
            "forecast" => print_forecast(&study),
            "redundancy" => print_redundancy(&study),
            other => eprintln!("unknown target `{other}` (see --help)"),
        }
        println!();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn week_series(
    weeks: &[crowd_core::time::WeekIndex],
    ys: impl Iterator<Item = f64>,
) -> Vec<(f64, f64)> {
    weeks.iter().zip(ys).map(|(w, y)| (f64::from(w.0), y)).collect()
}

fn print_summary(study: &Study, x: f64) {
    let s = study.dataset().summary();
    let mut t = TextTable::new(
        "§2.2 Dataset summary (raw · extrapolated to paper scale · paper)",
        &["quantity", "raw", "extrapolated", "paper"],
    );
    let row = |label: &str, raw: usize, factor: f64, paper: &str| {
        vec![
            label.to_string(),
            raw.to_string(),
            format!("{:.0}", raw as f64 * factor),
            paper.to_string(),
        ]
    };
    t.add_row(row("task instances (sampled)", study.n_instances(), x, "27M"));
    t.add_row(row("batches (total)", s.batches, x.sqrt(), "58k"));
    t.add_row(row("batches (sampled)", s.batches_sampled, x.sqrt(), "12k"));
    t.add_row(row("distinct tasks", s.distinct_tasks, x.sqrt(), "6,600"));
    t.add_row(row("distinct tasks in sample", s.distinct_tasks_sampled, x.sqrt(), "~5,000"));
    t.add_row(row("workers", s.workers, x.sqrt(), "~69,000"));
    t.add_row(row("labor sources", s.sources, 1.0, "139"));
    t.add_row(row("countries", s.countries, 1.0, "148"));
    println!("{}", t.render());
}

fn fig1(study: &Study) {
    let w = arrivals::weekly(study);
    let plot = LinePlot::new("Fig 1: distinct tasks per week — all vs sampled")
        .with_labels("week", "# distinct tasks")
        .add(Series::new(
            "all",
            week_series(&w.weeks, w.distinct_tasks_all.iter().map(|&v| v as f64)),
        ))
        .add(Series::new(
            "sampled",
            week_series(&w.weeks, w.distinct_tasks_sampled.iter().map(|&v| v as f64)),
        ));
    println!("{}", plot.render());
}

fn fig2(study: &Study) {
    let w = arrivals::weekly(study);
    let plot = LinePlot::new("Fig 2a: task instances issued per week (log y) + median pickup")
        .log_y()
        .with_labels("week", "# instances / pickup secs")
        .add(Series::new("instances", week_series(&w.weeks, w.instances.iter().map(|&v| v as f64))))
        .add(Series::new(
            "median pickup (s)",
            w.weeks
                .iter()
                .zip(&w.median_pickup)
                .filter_map(|(wk, p)| p.map(|p| (f64::from(wk.0), p)))
                .collect(),
        ));
    println!("{}", plot.render());
    let post = w.since(Timestamp::from_ymd(2015, 1, 1));
    let plot2 =
        LinePlot::new("Fig 2b: instances vs batches vs distinct tasks (post Jan'15, log y)")
            .log_y()
            .with_labels("week", "count")
            .add(Series::new(
                "instances",
                week_series(&post.weeks, post.instances.iter().map(|&v| v as f64)),
            ))
            .add(Series::new(
                "batches",
                week_series(&post.weeks, post.batches.iter().map(|&v| v as f64)),
            ))
            .add(Series::new(
                "distinct tasks",
                week_series(&post.weeks, post.distinct_tasks_all.iter().map(|&v| v as f64)),
            ));
    println!("{}", plot2.render());
}

fn fig3(study: &Study) {
    let by = arrivals::by_weekday(study);
    let chart = BarChart::new("Fig 3: task instances by day of week").bars(
        crowd_core::time::Weekday::ALL
            .iter()
            .map(|d| (d.abbrev().to_string(), by[d.index()] as f64)),
    );
    println!("{}", chart.render());
}

fn print_load(study: &Study, x: f64) {
    if let Some(d) = arrivals::daily_load(study, Timestamp::from_ymd(2015, 1, 1)) {
        let mut t = TextTable::new(
            "§3.1 Daily load, post Jan'15 (paper: median 30k, max 30×, min 0.0004×)",
            &["statistic", "value", "extrapolated"],
        );
        t.add_row(vec![
            "median instances/day".into(),
            format!("{:.0}", d.median),
            format!("{:.0}", d.median * x),
        ]);
        t.add_row(vec!["peak/median".into(), format!("{:.1}×", d.peak_ratio), "-".into()]);
        t.add_row(vec!["trough/median".into(), format!("{:.4}×", d.trough_ratio), "-".into()]);
        t.add_row(vec!["active days".into(), d.days.to_string(), "-".into()]);
        println!("{}", t.render());
    }
}

fn fig4(study: &Study) {
    let w = availability::weekly_workers(study);
    let plot = LinePlot::new("Fig 4: workers performing tasks, per week")
        .with_labels("week", "# workers")
        .add(Series::new(
            "active workers",
            week_series(&w.weeks, w.active_workers.iter().map(|&v| v as f64)),
        ));
    println!("{}", plot.render());
}

fn fig5(study: &Study) {
    let e = availability::engagement_split(study);
    let plot = LinePlot::new("Fig 5b: weekly tasks — top-10% vs bottom-90% of workers (log y)")
        .log_y()
        .with_labels("week", "# tasks")
        .add(Series::new("top-10%", week_series(&e.weeks, e.tasks_top10.iter().map(|&v| v as f64))))
        .add(Series::new(
            "bottom-90%",
            week_series(&e.weeks, e.tasks_bot90.iter().map(|&v| v as f64)),
        ));
    println!("{}", plot.render());
    println!("top-10% task share: {:.1}% (paper: >80%)\n", e.top10_task_share * 100.0);
    let hours = LinePlot::new("Fig 5b (2): weekly active hours — top-10% vs bottom-90%")
        .with_labels("week", "hours")
        .add(Series::new("top-10%", week_series(&e.weeks, e.hours_top10.iter().copied())))
        .add(Series::new("bottom-90%", week_series(&e.weeks, e.hours_bot90.iter().copied())));
    println!("{}", hours.render());
}

fn fig6(study: &Study) {
    let l = load::cluster_load(study);
    let sizes: Vec<u64> = l.batches_per_cluster.iter().map(|&b| u64::from(b)).collect();
    let hist = load::log_histogram(&sizes);
    let plot = LinePlot::new("Fig 6: # batches per cluster (log-log)")
        .log_x()
        .log_y()
        .with_labels("cluster size (batches)", "# clusters")
        .add(Series::new(
            "clusters",
            hist.iter().map(|&(s, c)| (s.max(1) as f64, c as f64)).collect(),
        ));
    println!("{}", plot.render());
    println!(
        "one-off clusters (<10 batches): {} · clusters >100 batches: {}",
        l.one_off_clusters, l.clusters_over_100_batches
    );
}

fn fig7(study: &Study) {
    let l = load::cluster_load(study);
    let hist = load::log_histogram(&l.instances_per_cluster);
    let plot = LinePlot::new("Fig 7: # instances per cluster (log-log)")
        .log_x()
        .log_y()
        .with_labels("instances in cluster", "# clusters")
        .add(Series::new(
            "clusters",
            hist.iter().map(|&(s, c)| (s.max(1) as f64, c as f64)).collect(),
        ));
    println!("{}", plot.render());
    println!(
        "median instances/cluster: {:.0} (paper: ~400 at full scale)",
        l.median_instances_per_cluster
    );
}

fn fig8(study: &Study) {
    let hh = load::heavy_hitters(study, 10);
    let mut plot =
        LinePlot::new("Fig 8: cumulative instances of the top-10 heavy-hitter clusters (log y)")
            .log_y()
            .with_labels("week", "cumulative instances");
    for h in &hh {
        plot = plot.add(Series::new(
            format!("cluster {} ({} batches)", h.cluster, h.n_batches),
            h.cumulative.iter().map(|&(w, c)| (f64::from(w.0), c as f64)).collect(),
        ));
    }
    println!("{}", plot.render());
}

fn fig9(study: &Study) {
    for d in [
        labels::goal_distribution(study),
        labels::data_distribution(study),
        labels::operator_distribution(study),
    ] {
        let chart = BarChart::new(format!("Fig 9: instances per {} label", d.category))
            .bars(d.counts.iter().map(|&(l, c)| (l.to_string(), c as f64)));
        println!("{}", chart.render());
    }
}

fn stacked(m: &labels::CrossMatrix, title: &str) -> String {
    let mut chart =
        StackedBars::new(title.to_string(), m.col_labels.iter().map(|s| s.to_string()).collect());
    let pct = m.row_percentages();
    for (r, label) in m.row_labels.iter().enumerate() {
        chart = chart.row(label.to_string(), pct[r].clone());
    }
    chart.render()
}

fn fig10(study: &Study) {
    println!("{}", stacked(&labels::data_given_goal(study), "Fig 10a: data types per goal (%)"));
    println!("{}", stacked(&labels::operator_given_goal(study), "Fig 10b: operators per goal (%)"));
    println!(
        "{}",
        stacked(&labels::operator_given_data(study), "Fig 10c: operators per data type (%)")
    );
}

fn fig11(study: &Study) {
    println!(
        "{}",
        stacked(&labels::data_given_goal(study).transposed(), "Fig 11a: goals per data type (%)")
    );
    println!(
        "{}",
        stacked(
            &labels::operator_given_goal(study).transposed(),
            "Fig 11b: goals per operator (%)"
        )
    );
    println!(
        "{}",
        stacked(
            &labels::operator_given_data(study).transposed(),
            "Fig 11c: data types per operator (%)"
        )
    );
}

fn fig12(study: &Study) {
    for t in [trends::goal_trend(study), trends::operator_trend(study), trends::data_trend(study)] {
        let plot =
            LinePlot::new(format!("Fig 12: cumulative clusters, simple vs complex {}", t.category))
                .with_labels("week", "cumulative clusters")
                .add(Series::new(
                    "simple",
                    week_series(&t.weeks, t.simple.iter().map(|&v| v as f64)),
                ))
                .add(Series::new(
                    "complex",
                    week_series(&t.weeks, t.complex.iter().map(|&v| v as f64)),
                ));
        println!("{}", plot.render());
        let (s, c) = t.totals();
        println!("totals — simple: {s}, complex: {c}");
    }
}

fn fig13(study: &Study) {
    let d = metrics::latency_decomposition(study);
    let plot = LinePlot::new("Fig 13b: median pickup vs task time by end-to-end splice (log-log)")
        .log_x()
        .log_y()
        .with_labels("end-to-end secs", "secs")
        .add(Series::new(
            "pickup-time",
            d.instance_level.iter().map(|p| (p.end_to_end, p.pickup)).collect(),
        ))
        .add(Series::new(
            "task-time",
            d.instance_level.iter().map(|p| (p.end_to_end, p.task)).collect(),
        ));
    println!("{}", plot.render());
    println!(
        "median pickup/task ratio: {:.1}× (paper: orders of magnitude)",
        d.median_pickup_to_task_ratio
    );
}

fn fig14(study: &Study) {
    for e in methodology::full_grid(study) {
        if !e.significant {
            continue;
        }
        let plot = LinePlot::new(format!(
            "Fig 14: CDF of {} split by {} at {:.1} (p = {:.1e})",
            e.metric.name(),
            e.feature.name(),
            e.split_value,
            e.p_value
        ))
        .with_labels(e.metric.name(), "P(value ≤ x)")
        .add(Series::new(format!("{} low", e.feature.name()), e.cdf1.clone()))
        .add(Series::new(format!("{} high", e.feature.name()), e.cdf2.clone()));
        println!("{}", plot.render());
    }
}

fn summary_table_text(t: &summary::SummaryTable, title: &str, unit: &str) -> String {
    let mut out = TextTable::new(
        title.to_string(),
        &[
            "bin-1",
            "n1",
            "bin-2",
            "n2",
            &format!("m1 ({unit})"),
            &format!("m2 ({unit})"),
            "p",
            "sig",
        ],
    );
    for r in &t.rows {
        out.add_row(vec![
            r.bin1_desc.clone(),
            r.bin1_n.to_string(),
            r.bin2_desc.clone(),
            r.bin2_n.to_string(),
            format!("{:.3}", r.bin1_median),
            format!("{:.3}", r.bin2_median),
            format!("{:.1e}", r.p_value),
            if r.significant { "✔".into() } else { "·".into() },
        ]);
    }
    out.render()
}

fn print_tables(study: &Study) {
    println!(
        "{}",
        summary_table_text(
            &summary::disagreement_table(study),
            "Table 1: disagreement score (paper: 0.147/0.108 · 0.169/0.086 · 0.102/0.160 · 0.128/0.101)",
            "score"
        )
    );
    println!(
        "{}",
        summary_table_text(
            &summary::task_time_table(study),
            "Table 2: median task time (paper: 230/136 · 119/286 · 184/129 s)",
            "s"
        )
    );
    println!(
        "{}",
        summary_table_text(
            &summary::pickup_time_table(study),
            "Table 3: median pickup time (paper: 4521/8132 · 6303/1353 · 7838/2431 s)",
            "s"
        )
    );
}

fn fig25(study: &Study) {
    for p in drilldown::fig25_panels(study) {
        match p.experiment {
            Some(e) => println!(
                "Fig 25({}): {:<50} m1 {:>9.3}  m2 {:>9.3}  p {:.1e}{}",
                (b'a' + p.index as u8) as char,
                p.description,
                e.bin1.median,
                e.bin2.median,
                e.p_value,
                if e.significant { "  ✔" } else { "" }
            ),
            None => println!(
                "Fig 25({}): {:<50} (insufficient clusters at this scale)",
                (b'a' + p.index as u8) as char,
                p.description
            ),
        }
    }
}

fn print_prediction(study: &Study) {
    let mut t = TextTable::new(
        "§4.9 Decision-tree prediction, 10 buckets, 5-fold CV\n(paper: range 39/95/98% exact; percentile 20/16/15% exact, 44/40/39% ±1)",
        &["metric", "scheme", "exact", "±1 bucket", "clusters"],
    );
    for r in prediction::predict_all(study, 0xC0DE) {
        t.add_row(vec![
            r.metric.name().into(),
            format!("{:?}", r.scheme),
            format!("{:.1}%", r.cv.accuracy * 100.0),
            format!("{:.1}%", r.cv.accuracy_within_1 * 100.0),
            r.n_clusters.to_string(),
        ]);
    }
    println!("{}", t.render());
    // Bucket distributions, as the paper prints them.
    for r in prediction::predict_all(study, 0xC0DE) {
        println!(
            "{} / {:?}: bounds {:?} counts {:?}",
            r.metric.name(),
            r.scheme,
            r.bucket_upper_bounds.iter().map(|b| format!("{b:.3}")).collect::<Vec<_>>(),
            r.bucket_counts
        );
    }
}

fn table4(study: &Study) {
    let names: Vec<&str> = study.dataset().sources.iter().map(|s| s.name.as_str()).collect();
    println!("Table 4: the {} labor sources", names.len());
    for chunk in names.chunks(8) {
        println!("  {}", chunk.join(" "));
    }
}

fn fig26(study: &Study) {
    let stats = sources::per_source(study);
    let mut by_avg: Vec<&sources::SourceStats> = stats.iter().collect();
    by_avg.sort_by(|a, b| b.avg_tasks_per_worker.total_cmp(&a.avg_tasks_per_worker));
    let chart = BarChart::new("Fig 26a: average tasks per worker by source (log, top 20)")
        .log_scale()
        .bars(by_avg.iter().take(20).map(|s| (s.name.clone(), s.avg_tasks_per_worker)));
    println!("{}", chart.render());
    let a = sources::active_sources_weekly(study);
    let plot = LinePlot::new("Fig 26b: active sources per week")
        .with_labels("week", "# sources")
        .add(Series::new(
            "active sources",
            week_series(&a.weeks, a.active_sources.iter().map(|&v| f64::from(v))),
        ));
    println!("{}", plot.render());
}

fn fig27(study: &Study) {
    let stats = sources::per_source(study);
    let top_w = sources::top_by_workers(&stats, 10);
    let chart = BarChart::new("Fig 27a: workers from the top-10 sources")
        .bars(top_w.iter().map(|s| (s.name.clone(), s.n_workers as f64)));
    println!("{}", chart.render());
    let mut t = TextTable::new(
        "Fig 27b/e: quality of the major sources (paper: amt trust 0.75, rel time >5)",
        &["source", "workers", "tasks", "mean trust", "rel task time"],
    );
    for s in &top_w {
        t.add_row(vec![
            s.name.clone(),
            s.n_workers.to_string(),
            s.n_tasks.to_string(),
            format!("{:.3}", s.mean_trust),
            format!("{:.2}×", s.mean_relative_task_time),
        ]);
    }
    if let Some(amt) = stats.iter().find(|s| s.name == "amt") {
        t.add_row(vec![
            "amt".into(),
            amt.n_workers.to_string(),
            amt.n_tasks.to_string(),
            format!("{:.3}", amt.mean_trust),
            format!("{:.2}×", amt.mean_relative_task_time),
        ]);
    }
    println!("{}", t.render());
    let (top_t, share) = sources::top_by_tasks(&stats, 10);
    println!(
        "Fig 27d: top-10 sources by tasks carry {:.1}% of all tasks (paper ≈95%): {}",
        share * 100.0,
        top_t.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ")
    );
    let q = sources::quality_stats(study, &stats);
    println!(
        "Fig 27c/f: sources with mean trust <0.8: {:.1}% (paper ~10%) · rel time ≥3×: {:.1}% (paper ~5%) · internal task share {:.2}% (paper ~2%)",
        q.low_trust_fraction * 100.0,
        q.slow_fraction * 100.0,
        q.internal_task_share * 100.0
    );
}

fn fig28(study: &Study) {
    let g = geography::distribution(study);
    let chart = BarChart::new(format!(
        "Fig 28: workers by country (top 15 of {}; top-5 share {:.1}%, paper ≈50%)",
        g.n_countries(),
        g.top_share(5) * 100.0
    ))
    .bars(g.countries.iter().take(15).map(|(_, name, c)| (name.clone(), *c as f64)));
    println!("{}", chart.render());
}

fn fig29(study: &Study) {
    let d = workload::distribution(study);
    let rank_points: Vec<(f64, f64)> =
        d.tasks_by_rank.iter().enumerate().map(|(i, &c)| ((i + 1) as f64, c as f64)).collect();
    let plot = LinePlot::new("Fig 29a: tasks per worker by rank (log-log)")
        .log_x()
        .log_y()
        .with_labels("worker rank", "# tasks")
        .add(Series::new("workers", rank_points));
    println!("{}", plot.render());
    println!(
        "top-10% share: {:.1}% (paper >80%) · workers under 1h/working day: {:.1}% (paper >90%)",
        d.top10_share * 100.0,
        d.under_one_hour_fraction * 100.0
    );
}

fn fig30(study: &Study) {
    let l = lifetimes::lifetime_stats(study);
    let mut hist = crowd_stats::Histogram::new(
        crowd_stats::HistogramKind::Linear { lo: 0.0, hi: 1_500.0 },
        30,
    );
    hist.extend(&l.lifetimes_days.iter().map(|&d| f64::from(d)).collect::<Vec<_>>());
    let plot = LinePlot::new("Fig 30a: worker lifetimes (days, log y)")
        .log_y()
        .with_labels("lifetime (days)", "# workers")
        .add(Series::new("workers", hist.points().iter().map(|&(x, c)| (x, c as f64)).collect()));
    println!("{}", plot.render());
    let mut t = TextTable::new("§5.3 lifetime statistics", &["statistic", "value", "paper"]);
    t.add_row(vec![
        "one-day workers".into(),
        format!("{:.1}%", l.one_day_fraction * 100.0),
        "52.7%".into(),
    ]);
    t.add_row(vec![
        "their task share".into(),
        format!("{:.1}%", l.one_day_task_share * 100.0),
        "2.4%".into(),
    ]);
    t.add_row(vec![
        "lifetime <100 days".into(),
        format!("{:.1}%", l.short_lifetime_fraction * 100.0),
        "79%".into(),
    ]);
    t.add_row(vec![
        "active (>10 days) workers".into(),
        format!("{:.1}%", l.active_worker_fraction * 100.0),
        "~15%".into(),
    ]);
    t.add_row(vec![
        "active task share".into(),
        format!("{:.1}%", l.active_task_share * 100.0),
        "83%".into(),
    ]);
    t.add_row(vec![
        "active working ≥weekly".into(),
        format!("{:.1}%", l.weekly_active_fraction * 100.0),
        ">43%".into(),
    ]);
    println!("{}", t.render());
}

fn print_sessions(study: &Study) {
    use crowd_analytics::workers::sessions;
    let st = sessions::sessions(study, sessions::DEFAULT_GAP);
    println!(
        "§5.3 work sessions (30-min gap): {} sessions, median span {:.1} min,          median {:.0} instances/session, {:.1} sessions/worker, {:.0}% single-instance",
        st.sessions.len(),
        st.median_span_mins,
        st.median_instances,
        st.mean_sessions_per_worker,
        st.single_instance_fraction * 100.0
    );
}

fn print_cohorts(study: &Study) {
    use crowd_analytics::workers::cohorts;
    let cs = cohorts::monthly_cohorts(study);
    let mean = cohorts::mean_retention(&cs, 12);
    println!(
        "§5.3 cohort retention ({} monthly cohorts): mean retention by month {}",
        cs.len(),
        mean.iter().map(|r| format!("{:.0}%", r * 100.0)).collect::<Vec<_>>().join(" ")
    );
}

fn print_forecast(study: &Study) {
    use crowd_analytics::design::forecast::{fit_pickup, PickupProfile};
    let mut t = TextTable::new(
        "pickup forecasts by design profile (lognormal fit over clusters)",
        &["examples", "images", "large batch", "median", "p90", "80% done by", "n"],
    );
    for profile in PickupProfile::all() {
        if let Some(f) = fit_pickup(study, profile) {
            t.add_row(vec![
                if profile.has_examples { "yes" } else { "-" }.into(),
                if profile.has_images { "yes" } else { "-" }.into(),
                if profile.large_batch { "yes" } else { "-" }.into(),
                format!("{:.0}s", f.median_secs()),
                format!("{:.0}s", f.quantile(0.9)),
                format!("{:.1}h", f.quantile(0.8) / 3_600.0),
                f.n_clusters.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}

fn print_redundancy(study: &Study) {
    use crowd_analytics::design::redundancy;
    if let Some(r) = redundancy::redundancy(study) {
        println!(
            "§4.1 redundancy: mean {:.2} judgments/item (median {:.0}, max {:.0});              {:.1}% of items have ≥2 judgments (pairwise disagreement defined)",
            r.per_item.mean,
            r.per_item.median,
            r.per_item.max,
            r.pairable_fraction * 100.0
        );
    }
}

fn print_trust(study: &Study) {
    match lifetimes::active_trust(study) {
        Some(t) => println!(
            "§5.4 active-worker trust: mean {:.3} (paper ≥0.91) · median {:.3} · p10 {:.3} (paper: 90% >0.84) · n={}",
            t.mean, t.median, t.p10, t.n
        ),
        None => println!("§5.4: no active workers at this scale"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Args, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_select_all_targets() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.opts, CommonOpts::default());
        assert_eq!(args.targets.len(), ALL_TARGETS.len());
        assert!(!args.help);
    }

    #[test]
    fn explicit_flags_parse() {
        let args = parse(&["--scale", "0.5", "--seed", "7", "--threads", "4", "fig1"]).unwrap();
        assert_eq!(
            args.opts,
            CommonOpts { scale: 0.5, seed: 7, threads: Some(4), ..CommonOpts::default() }
        );
        assert_eq!(args.targets.iter().collect::<Vec<_>>(), ["fig1"]);
    }

    #[test]
    fn scale_bounds_are_enforced() {
        assert!(parse(&["--scale", "0"]).is_err(), "zero scale is an empty marketplace");
        assert!(parse(&["--scale", "-0.1"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err(), "above paper scale");
        assert!(parse(&["--scale", "NaN"]).is_err());
        assert!(parse(&["--scale", "inf"]).is_err());
        assert!(parse(&["--scale"]).is_err(), "missing value");
        assert!(parse(&["--scale", "abc"]).is_err(), "non-numeric");
        assert!(parse(&["--scale", "1"]).is_ok(), "paper scale itself is valid");
        assert!(parse(&["--scale", "0.001"]).is_ok());
    }

    #[test]
    fn threads_must_be_positive() {
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "-1"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert_eq!(parse(&["--threads", "1"]).unwrap().opts.threads, Some(1));
    }

    #[test]
    fn seed_requires_integer() {
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert_eq!(parse(&["--seed", "42"]).unwrap().opts.seed, 42);
    }

    #[test]
    fn all_keyword_expands() {
        let args = parse(&["all", "fig1"]).unwrap();
        assert_eq!(args.targets.len(), ALL_TARGETS.len());
    }

    #[test]
    fn help_flag() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
    }
}
