//! `serve` — runs the live incremental analytics service against a
//! replayed marketplace event stream.
//!
//! ```text
//! serve [--scale S] [--seed N] [--threads T] [--batch-events N]
//!       [--readers M] [--checkpoint-dir DIR] [--checkpoint-every N]
//!       [--wal-dir DIR] [--fsync-every N] [--shed-policy P] [--queue-cap N]
//!       [--resume] [--export-state FILE] [--verify]
//! ```
//!
//! The simulated dataset is split into entity tables plus the event feed
//! a live platform would have emitted; the feed goes through the
//! `crowd-ingest` wire format (retry/quarantine/reorder/digest) and is
//! applied to the service through a bounded admission queue while
//! `--readers` query threads block on published versions (no spinning)
//! and render dashboards. With `--wal-dir` every batch is written ahead
//! to a durable log, so a `SIGKILL` at any instant loses no accepted
//! event: rerun with `--resume` and the service restores the newest
//! checkpoint, replays the WAL tail, and re-ingests the rest of the feed.
//! `--export-state` writes a deterministic dump of the final state —
//! byte-identical across crashed-and-recovered and never-crashed runs —
//! which is exactly what the kill-point chaos harness diffs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crowd_ingest::events::{load_events, EventOptions};
use crowd_ingest::killpoint::points_passed;
use crowd_ingest::{MarketEvent, WalOptions};
use crowd_marketplace::cli::CommonOpts;
use crowd_serve::query::dashboard;
use crowd_serve::{ApplyQueue, CheckpointStore, EventFeed, LiveService, ServeError, ShedPolicy};
use crowd_sim::SimConfig;

#[derive(Debug, Clone, PartialEq)]
struct Args {
    opts: CommonOpts,
    batch_events: usize,
    readers: usize,
    checkpoint_dir: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    wal_dir: Option<std::path::PathBuf>,
    fsync_every: u64,
    wal_segment_bytes: u64,
    shed_policy: ShedPolicy,
    queue_cap: usize,
    resume: bool,
    export_state: Option<std::path::PathBuf>,
    verify: bool,
    help: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            opts: CommonOpts::default(),
            batch_events: 8192,
            readers: 2,
            checkpoint_dir: None,
            checkpoint_every: 100_000,
            wal_dir: None,
            fsync_every: 1,
            wal_segment_bytes: WalOptions::default().segment_bytes,
            shed_policy: ShedPolicy::Block,
            queue_cap: 4,
            resume: false,
            export_state: None,
            verify: false,
            help: false,
        }
    }
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut out = Args::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        if out.opts.accept(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => out.help = true,
            "--verify" => out.verify = true,
            "--resume" => out.resume = true,
            "--batch-events" => {
                out.batch_events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--batch-events needs a positive integer")?;
            }
            "--readers" => {
                out.readers =
                    args.next().and_then(|v| v.parse().ok()).ok_or("--readers needs an integer")?;
            }
            "--checkpoint-dir" => {
                let dir = args.next().ok_or("--checkpoint-dir needs a directory path")?;
                if dir.is_empty() {
                    return Err("--checkpoint-dir needs a directory path".into());
                }
                out.checkpoint_dir = Some(dir.into());
            }
            "--checkpoint-every" => {
                out.checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--checkpoint-every needs a positive integer")?;
            }
            "--wal-dir" => {
                let dir = args.next().ok_or("--wal-dir needs a directory path")?;
                if dir.is_empty() {
                    return Err("--wal-dir needs a directory path".into());
                }
                out.wal_dir = Some(dir.into());
            }
            "--fsync-every" => {
                out.fsync_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--fsync-every needs a positive integer")?;
            }
            "--wal-segment-bytes" => {
                out.wal_segment_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 64)
                    .ok_or("--wal-segment-bytes needs an integer ≥ 64")?;
            }
            "--shed-policy" => {
                let v = args.next().ok_or("--shed-policy needs block|shed-oldest|degrade-stale")?;
                out.shed_policy = ShedPolicy::parse(&v)
                    .ok_or("--shed-policy needs block|shed-oldest|degrade-stale")?;
            }
            "--queue-cap" => {
                out.queue_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--queue-cap needs a positive integer")?;
            }
            "--export-state" => {
                let path = args.next().ok_or("--export-state needs a file path")?;
                if path.is_empty() {
                    return Err("--export-state needs a file path".into());
                }
                out.export_state = Some(path.into());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(out)
}

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2);
}

/// A deterministic dump of everything the durability guarantee covers:
/// event counters, every applied row in applied order, and the fused
/// aggregates. Versions, WAL stats, and overload gauges are *excluded* —
/// they legitimately differ between a straight run and a
/// crashed-and-recovered one whose state is nonetheless identical.
fn export_state(service: &LiveService) -> String {
    let snap = service.handle().snapshot();
    let g = service.gauges();
    let mut out = String::new();
    out.push_str(&format!("events_applied={}\n", service.events_applied()));
    out.push_str(&format!(
        "posted={} picked_up={} completed={}\n",
        g.posted, g.picked_up, g.completed
    ));
    out.push_str("rows:\n");
    for row in service.rows().iter() {
        crowd_core::csv::instance_record(row, &mut out);
    }
    out.push_str(&format!("fused={:?}\n", snap.view.fused));
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    if args.help {
        println!(
            "usage: serve [--scale S] [--seed N] [--threads T] [--batch-events N] \
             [--readers M] [--checkpoint-dir DIR] [--checkpoint-every N] [--wal-dir DIR] \
             [--fsync-every N] [--shed-policy P] [--queue-cap N] [--resume] \
             [--export-state FILE] [--verify]"
        );
        println!("  --batch-events N     events per applied delta batch (default 8192)");
        println!("  --readers M          concurrent dashboard query threads (default 2)");
        println!("  --checkpoint-dir DIR persist periodic checkpoints under DIR");
        println!("  --checkpoint-every N checkpoint cadence in events (default 100000)");
        println!("  --wal-dir DIR        write-ahead log every batch under DIR (crash-safe)");
        println!("  --fsync-every N      WAL appends per fsync (default 1)");
        println!("  --wal-segment-bytes N  WAL segment rotation size (default 4 MiB)");
        println!("  --shed-policy P      overload policy: block|shed-oldest|degrade-stale");
        println!("  --queue-cap N        apply-queue capacity in batches (default 4)");
        println!("  --resume             recover from checkpoints (+ WAL tail) before ingesting");
        println!("  --export-state FILE  write a deterministic final-state dump to FILE");
        println!(
            "  --verify             rebuild the batch study and check the live view against it"
        );
        return;
    }
    args.opts.install_thread_pool().unwrap_or_else(|e| die(&e));

    let cfg = SimConfig::new(args.opts.seed, args.opts.scale);
    eprintln!("simulating feed at scale {} (seed {}) …", cfg.scale, cfg.seed);
    let feed = EventFeed::from_config(&cfg);
    let wire = feed.to_csv();
    eprintln!(
        "feed: {} events ({} completions), {:.1} MiB on the wire",
        feed.events.len(),
        feed.n_completed(),
        wire.len() as f64 / (1024.0 * 1024.0)
    );

    let wal_opts =
        WalOptions { fsync_every: args.fsync_every, segment_bytes: args.wal_segment_bytes };
    let mut service = if args.resume {
        let dir = args
            .checkpoint_dir
            .as_deref()
            .unwrap_or_else(|| die("--resume requires --checkpoint-dir"));
        let store = CheckpointStore::new(dir, cfg.seed);
        let started = Instant::now();
        let service = if let Some(wal_dir) = &args.wal_dir {
            let (service, report) = LiveService::restore_durable(
                store,
                args.checkpoint_every,
                Arc::clone(&feed.entities),
                wal_dir,
                wal_opts,
            )
            .unwrap_or_else(|e| die(&format!("recovery failed: {e}")));
            eprintln!(
                "recovered: checkpoint at {} events + {} WAL events ({} records{}){}",
                report.checkpoint_events,
                report.wal_events_replayed,
                report.wal_records,
                if report.torn_truncated { ", torn tail truncated" } else { "" },
                if report.checkpoint_faults.is_empty() {
                    String::new()
                } else {
                    format!(", stepped over {} bad checkpoint(s)", report.checkpoint_faults.len())
                },
            );
            service
        } else {
            match LiveService::restore(store, args.checkpoint_every) {
                Ok((service, faults)) => {
                    if !faults.is_empty() {
                        eprintln!("recovered past {} damaged checkpoint(s)", faults.len());
                    }
                    service
                }
                Err(ServeError::Checkpoint(crowd_serve::CheckpointError::NoValidCheckpoint {
                    ..
                })) => {
                    eprintln!("no checkpoint to resume from; starting fresh");
                    let store = CheckpointStore::new(dir, cfg.seed);
                    LiveService::new(Arc::clone(&feed.entities))
                        .with_checkpoints(store, args.checkpoint_every)
                }
                Err(e) => die(&format!("recovery failed: {e}")),
            }
        };
        println!("recovery_ms={:.1}", started.elapsed().as_secs_f64() * 1e3);
        service
    } else {
        let mut service = LiveService::new(Arc::clone(&feed.entities));
        if let Some(dir) = &args.checkpoint_dir {
            let store = CheckpointStore::new(dir, cfg.seed);
            service = service.with_checkpoints(store, args.checkpoint_every);
        }
        if let Some(wal_dir) = &args.wal_dir {
            service = service
                .with_wal(wal_dir, cfg.seed, wal_opts)
                .unwrap_or_else(|e| die(&format!("wal open failed: {e}")));
        }
        service
    };

    // Readers block on the next published version (condvar, not spin) and
    // render the full dashboard against each snapshot they observe.
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let entities = Arc::clone(&feed.entities);
    let readers: Vec<_> = (0..args.readers)
        .map(|_| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let entities = Arc::clone(&entities);
            let first = service.version() + 1;
            std::thread::spawn(move || {
                let mut next_version = first;
                let mut latencies_us = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let Some(snap) =
                        handle.wait_for_version(next_version, Duration::from_millis(50))
                    else {
                        continue;
                    };
                    let t = Instant::now();
                    assert!(snap.version >= next_version, "wait returned a stale snapshot");
                    next_version = snap.version + 1;
                    let dash = dashboard(&snap.view.fused, &entities);
                    assert_eq!(dash.n_instances, snap.view.rows as u64, "torn snapshot");
                    latencies_us.push(t.elapsed().as_micros() as u64);
                    queries.fetch_add(1, Ordering::Relaxed);
                }
                latencies_us
            })
        })
        .collect();

    // Decode the full wire stream (hardened path: retry, quarantine,
    // canonical reorder, digest), then apply only the tail this process
    // hasn't covered yet — on a fresh start that's everything.
    let log = load_events(&mut wire.as_bytes(), &feed.entities, &EventOptions::default())
        .unwrap_or_else(|e| die(&e.to_string()));
    let already = service.events_applied() as usize;
    if already > log.events.len() {
        die(&format!(
            "recovered state covers {already} events but the feed has {}",
            log.events.len()
        ));
    }
    let pending: Vec<Vec<MarketEvent>> =
        log.events[already..].chunks(args.batch_events).map(<[MarketEvent]>::to_vec).collect();

    // Producer pushes batches through the admission queue; this thread is
    // the single writer draining it under the configured shed policy.
    let queue = Arc::new(ApplyQueue::new(args.queue_cap, args.shed_policy));
    let producer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for batch in pending {
                queue.push(batch);
            }
            queue.close();
        })
    };

    let started = Instant::now();
    let mut batches = 0u64;
    let mut applied = 0u64;
    let mut seen_shed = (0u64, 0u64);
    loop {
        let popped = match args.shed_policy {
            ShedPolicy::DegradeStale => queue.pop_all(Duration::from_secs(5)),
            _ => queue.pop(Duration::from_secs(5)).map(|events| (events, 1)),
        };
        let Some((events, coalesced)) = popped else { break };
        let stats = queue.stats();
        if stats.shed_batches > seen_shed.0 {
            // Shed at admission: those events were never accepted.
            service.note_shed(stats.shed_batches - seen_shed.0, stats.shed_events - seen_shed.1);
            seen_shed = (stats.shed_batches, stats.shed_events);
        }
        let (_, lag) = queue.pending();
        service.set_lag(lag);
        service.apply_events(&events).unwrap_or_else(|e| die(&format!("apply failed: {e}")));
        batches += coalesced;
        applied += events.len() as u64;
    }
    service.wal_sync().unwrap_or_else(|e| die(&format!("wal sync failed: {e}")));
    let elapsed = started.elapsed();
    producer.join().expect("producer panicked");
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> =
        readers.into_iter().flat_map(|r| r.join().expect("reader panicked")).collect();
    latencies.sort_unstable();

    let events_per_sec = applied as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "applied {applied} events in {batches} batches over {:.2}s — {:.0} events/s, final version {}",
        elapsed.as_secs_f64(),
        events_per_sec,
        service.version()
    );
    println!(
        "ingest: accepted {} repaired {} deduped {} quarantined {} (digest verified: {:?})",
        log.report.accepted,
        log.report.repaired,
        log.report.deduped,
        log.report.quarantined,
        log.report.verified
    );
    let gauges = service.gauges();
    if let Some(wal) = service.wal_stats() {
        println!(
            "wal: {} appends, {} fsyncs, {} rotations, {:.1} MiB, {} segments retired",
            wal.appends,
            wal.fsyncs,
            wal.rotations,
            wal.bytes_written as f64 / (1024.0 * 1024.0),
            wal.segments_retired
        );
    }
    let qstats = queue.stats();
    println!(
        "overload: policy {} — {} shed batches ({} events), {} blocked pushes, peak depth {}, final lag {}",
        args.shed_policy.name(),
        gauges.shed_batches,
        gauges.shed_events,
        qstats.blocked_pushes,
        qstats.peak_depth,
        gauges.lag_events
    );
    let total_queries = queries.load(Ordering::Relaxed);
    if !latencies.is_empty() {
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
        println!(
            "queries: {} dashboards across {} readers — p50 {}µs p99 {}µs",
            total_queries,
            args.readers,
            pct(0.50),
            pct(0.99)
        );
    }

    let snap = service.handle().snapshot();
    let dash = dashboard(&snap.view.fused, service.entities());
    println!(
        "live view: {} instances, {} workers, {} weeks, median trust {:.3}",
        dash.n_instances,
        dash.n_workers,
        snap.view.fused.n_weeks,
        dash.median_trust.unwrap_or(f64::NAN)
    );

    if let Some(path) = &args.export_state {
        let dump = export_state(&service);
        std::fs::write(path, dump).unwrap_or_else(|e| die(&format!("export failed: {e}")));
        eprintln!("state exported to {}", path.display());
    }

    if std::env::var("CROWD_KILL_REPORT").is_ok_and(|v| v == "1") {
        // The chaos harness reads this to learn the kill-point schedule
        // length of an uninterrupted run.
        println!("killpoints_passed={}", points_passed());
    }

    if args.verify {
        eprintln!("verify: rebuilding cold batch study …");
        let batch = service.batch_study();
        let live = &snap.view.fused;
        let cold = batch.fused();
        let mut bad = Vec::new();
        if live.n_instances() != cold.n_instances() {
            bad.push("n_instances".to_string());
        }
        if live.issued != cold.issued || live.completed != cold.completed {
            bad.push("weekly throughput".to_string());
        }
        if live.median_pickup != cold.median_pickup {
            bad.push("median pickup".to_string());
        }
        if live.workers.len() != cold.workers.len() {
            bad.push("worker count".to_string());
        }
        if live.per_item != cold.per_item {
            bad.push("per-item judgments".to_string());
        }
        if bad.is_empty() {
            println!("verify: live view ≡ batch study ✓");
        } else {
            die(&format!("verify FAILED: live view diverged on {}", bad.join(", ")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_flags_and_common_opts() {
        let args = parse_args(
            ["--scale", "0.002", "--batch-events", "1000", "--readers", "0", "--verify"]
                .map(String::from),
        )
        .unwrap();
        assert_eq!(args.opts.scale, 0.002);
        assert_eq!(args.batch_events, 1000);
        assert_eq!(args.readers, 0);
        assert!(args.verify);
    }

    #[test]
    fn parses_durability_and_overload_flags() {
        let args = parse_args(
            [
                "--wal-dir",
                "w",
                "--fsync-every",
                "8",
                "--shed-policy",
                "degrade-stale",
                "--queue-cap",
                "16",
                "--resume",
                "--export-state",
                "dump.txt",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(args.wal_dir.as_deref(), Some(std::path::Path::new("w")));
        assert_eq!(args.fsync_every, 8);
        assert_eq!(args.shed_policy, ShedPolicy::DegradeStale);
        assert_eq!(args.queue_cap, 16);
        assert!(args.resume);
        assert_eq!(args.export_state.as_deref(), Some(std::path::Path::new("dump.txt")));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_args(["--batch-events", "0"].map(String::from)).is_err());
        assert!(parse_args(["--frobnicate"].map(String::from)).is_err());
        assert!(parse_args(["--checkpoint-every", "0"].map(String::from)).is_err());
        assert!(parse_args(["--fsync-every", "0"].map(String::from)).is_err());
        assert!(parse_args(["--shed-policy", "panic"].map(String::from)).is_err());
        assert!(parse_args(["--queue-cap", "0"].map(String::from)).is_err());
        assert!(parse_args(["--wal-dir", ""].map(String::from)).is_err());
    }
}
