//! `serve` — runs the live incremental analytics service against a
//! replayed marketplace event stream.
//!
//! ```text
//! serve [--scale S] [--seed N] [--threads T] [--batch-events N]
//!       [--readers M] [--checkpoint-dir DIR] [--checkpoint-every N]
//!       [--verify]
//! ```
//!
//! The simulated dataset is split into entity tables plus the event feed
//! a live platform would have emitted; the feed goes through the
//! `crowd-ingest` wire format (retry/quarantine/reorder/digest) and is
//! applied to the service in batches while `--readers` query threads
//! continuously render dashboards against published snapshots. The run
//! reports sustained apply throughput, query latency percentiles, and
//! (with `--verify`) the incremental-vs-batch differential.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crowd_ingest::events::EventOptions;
use crowd_marketplace::cli::CommonOpts;
use crowd_serve::query::dashboard;
use crowd_serve::{CheckpointStore, EventFeed, LiveService};
use crowd_sim::SimConfig;

#[derive(Debug, Clone, PartialEq)]
struct Args {
    opts: CommonOpts,
    batch_events: usize,
    readers: usize,
    checkpoint_dir: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    verify: bool,
    help: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            opts: CommonOpts::default(),
            batch_events: 8192,
            readers: 2,
            checkpoint_dir: None,
            checkpoint_every: 100_000,
            verify: false,
            help: false,
        }
    }
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut out = Args::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        if out.opts.accept(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => out.help = true,
            "--verify" => out.verify = true,
            "--batch-events" => {
                out.batch_events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--batch-events needs a positive integer")?;
            }
            "--readers" => {
                out.readers =
                    args.next().and_then(|v| v.parse().ok()).ok_or("--readers needs an integer")?;
            }
            "--checkpoint-dir" => {
                let dir = args.next().ok_or("--checkpoint-dir needs a directory path")?;
                if dir.is_empty() {
                    return Err("--checkpoint-dir needs a directory path".into());
                }
                out.checkpoint_dir = Some(dir.into());
            }
            "--checkpoint-every" => {
                out.checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--checkpoint-every needs a positive integer")?;
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(out)
}

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    if args.help {
        println!(
            "usage: serve [--scale S] [--seed N] [--threads T] [--batch-events N] \
             [--readers M] [--checkpoint-dir DIR] [--checkpoint-every N] [--verify]"
        );
        println!("  --batch-events N     events per applied delta batch (default 8192)");
        println!("  --readers M          concurrent dashboard query threads (default 2)");
        println!("  --checkpoint-dir DIR persist periodic checkpoints under DIR");
        println!("  --checkpoint-every N checkpoint cadence in events (default 100000)");
        println!(
            "  --verify             rebuild the batch study and check the live view against it"
        );
        return;
    }
    args.opts.install_thread_pool().unwrap_or_else(|e| die(&e));

    let cfg = SimConfig::new(args.opts.seed, args.opts.scale);
    eprintln!("simulating feed at scale {} (seed {}) …", cfg.scale, cfg.seed);
    let feed = EventFeed::from_config(&cfg);
    let wire = feed.to_csv();
    eprintln!(
        "feed: {} events ({} completions), {:.1} MiB on the wire",
        feed.events.len(),
        feed.n_completed(),
        wire.len() as f64 / (1024.0 * 1024.0)
    );

    let mut service = LiveService::new(Arc::clone(&feed.entities));
    if let Some(dir) = &args.checkpoint_dir {
        let store = CheckpointStore::new(dir, cfg.seed);
        service = service.with_checkpoints(store, args.checkpoint_every);
    }

    // Readers race the writer: each loops grabbing the latest snapshot and
    // rendering the full dashboard until the writer finishes.
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let entities = Arc::clone(&feed.entities);
    let readers: Vec<_> = (0..args.readers)
        .map(|_| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let entities = Arc::clone(&entities);
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut latencies_us = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let snap = handle.snapshot();
                    assert!(snap.version >= last_version, "versions must be monotone");
                    last_version = snap.version;
                    let dash = dashboard(&snap.view.fused, &entities);
                    assert_eq!(dash.n_instances, snap.view.rows as u64, "torn snapshot");
                    latencies_us.push(t.elapsed().as_micros() as u64);
                    queries.fetch_add(1, Ordering::Relaxed);
                }
                latencies_us
            })
        })
        .collect();

    let started = Instant::now();
    let summary = service
        .ingest_stream(&mut wire.as_bytes(), &EventOptions::default(), args.batch_events)
        .unwrap_or_else(|e| die(&e.to_string()));
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> =
        readers.into_iter().flat_map(|r| r.join().expect("reader panicked")).collect();
    latencies.sort_unstable();

    let events_per_sec = summary.events_applied as f64 / elapsed.as_secs_f64();
    println!(
        "applied {} events in {} batches over {:.2}s — {:.0} events/s, final version {}",
        summary.events_applied,
        summary.batches,
        elapsed.as_secs_f64(),
        events_per_sec,
        summary.version
    );
    println!(
        "ingest: accepted {} repaired {} deduped {} quarantined {} (digest verified: {:?})",
        summary.report.accepted,
        summary.report.repaired,
        summary.report.deduped,
        summary.report.quarantined,
        summary.report.verified
    );
    let total_queries = queries.load(Ordering::Relaxed);
    if !latencies.is_empty() {
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
        println!(
            "queries: {} dashboards across {} readers — p50 {}µs p99 {}µs",
            total_queries,
            args.readers,
            pct(0.50),
            pct(0.99)
        );
    }

    let snap = service.handle().snapshot();
    let dash = dashboard(&snap.view.fused, service.entities());
    println!(
        "live view: {} instances, {} workers, {} weeks, median trust {:.3}",
        dash.n_instances,
        dash.n_workers,
        snap.view.fused.n_weeks,
        dash.median_trust.unwrap_or(f64::NAN)
    );

    if args.verify {
        eprintln!("verify: rebuilding cold batch study …");
        let batch = service.batch_study();
        let live = &snap.view.fused;
        let cold = batch.fused();
        let mut bad = Vec::new();
        if live.n_instances() != cold.n_instances() {
            bad.push("n_instances".to_string());
        }
        if live.issued != cold.issued || live.completed != cold.completed {
            bad.push("weekly throughput".to_string());
        }
        if live.median_pickup != cold.median_pickup {
            bad.push("median pickup".to_string());
        }
        if live.workers.len() != cold.workers.len() {
            bad.push("worker count".to_string());
        }
        if live.per_item != cold.per_item {
            bad.push("per-item judgments".to_string());
        }
        if bad.is_empty() {
            println!("verify: live view ≡ batch study ✓");
        } else {
            die(&format!("verify FAILED: live view diverged on {}", bad.join(", ")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_flags_and_common_opts() {
        let args = parse_args(
            ["--scale", "0.002", "--batch-events", "1000", "--readers", "0", "--verify"]
                .map(String::from),
        )
        .unwrap();
        assert_eq!(args.opts.scale, 0.002);
        assert_eq!(args.batch_events, 1000);
        assert_eq!(args.readers, 0);
        assert!(args.verify);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_args(["--batch-events", "0"].map(String::from)).is_err());
        assert!(parse_args(["--frobnicate"].map(String::from)).is_err());
        assert!(parse_args(["--checkpoint-every", "0"].map(String::from)).is_err());
    }
}
