//! `export` — writes the study's core series and tables as CSV files, for
//! re-plotting the figures with external tooling (gnuplot, matplotlib, R).
//!
//! ```text
//! export [--scale S] [--seed N] [--out DIR] [--threads T]
//!        [--snapshot-dir DIR] [--no-snapshot] [--input-dir DIR]
//!        [--shards N]
//! ```
//!
//! With `--input-dir`, the dataset is loaded from a previously exported
//! directory through the resilient ingest path instead of simulated.
//! With `--snapshot-dir` and `--shards N > 1`, the build streams
//! (DESIGN.md §16): cold runs flush each finished shard to the snapshot
//! as it completes, warm runs load entities + enrichment only, and the
//! CSVs are byte-identical either way (`tests/streamed_equivalence.rs`).
//!
//! Files written into `DIR` (default `./export`):
//! `weekly.csv` (Figs 1/2/4/5 series), `weekday.csv` (Fig 3),
//! `cluster_sizes.csv` (Figs 6/7), `heavy_hitters.csv` (Fig 8),
//! `labels.csv` (Fig 9), `trends.csv` (Fig 12),
//! `experiments.csv` (Fig 14 / Tables 1–3), `prediction.csv` (§4.9),
//! `sources.csv` (Figs 26/27), `geography.csv` (Fig 28),
//! `lifetimes.csv` (Fig 30), `cohorts.csv` (§5.3 extension).

use std::fmt::Write as _;
use std::path::PathBuf;

use crowd_analytics::design::{methodology, prediction};
use crowd_analytics::marketplace::{arrivals, availability, labels, load, trends};
use crowd_analytics::workers::{cohorts, geography, lifetimes, sources};
use crowd_marketplace::cli::CommonOpts;
use crowd_report::{series_to_csv, Series};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn main() {
    let mut opts = CommonOpts::default();
    let mut out = PathBuf::from("export");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match opts.accept(&arg, &mut args) {
            Ok(true) => {}
            Ok(false) => match arg.as_str() {
                "--out" => {
                    out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs DIR")));
                }
                other => die(&format!("unknown argument `{other}`")),
            },
            Err(e) => die(&e),
        }
    }
    opts.install_thread_pool().unwrap_or_else(|e| die(&e));
    std::fs::create_dir_all(&out).expect("create output dir");

    let study = opts.build_study().unwrap_or_else(|e| die(&e));
    let write = |name: &str, content: String| {
        let path = out.join(name);
        std::fs::write(&path, content).expect("write csv");
        eprintln!("wrote {}", path.display());
    };

    // Weekly series (Figs 1, 2, 4, 5).
    let w = arrivals::weekly(&study);
    let workers = availability::weekly_workers(&study);
    let engagement = availability::engagement_split(&study);
    let wk = |i: &crowd_core::time::WeekIndex| f64::from(i.0);
    write(
        "weekly.csv",
        series_to_csv(&[
            Series::new(
                "instances",
                w.weeks.iter().zip(&w.instances).map(|(k, &v)| (wk(k), v as f64)).collect(),
            ),
            Series::new(
                "batches",
                w.weeks.iter().zip(&w.batches).map(|(k, &v)| (wk(k), v as f64)).collect(),
            ),
            Series::new(
                "distinct_all",
                w.weeks
                    .iter()
                    .zip(&w.distinct_tasks_all)
                    .map(|(k, &v)| (wk(k), v as f64))
                    .collect(),
            ),
            Series::new(
                "distinct_sampled",
                w.weeks
                    .iter()
                    .zip(&w.distinct_tasks_sampled)
                    .map(|(k, &v)| (wk(k), v as f64))
                    .collect(),
            ),
            Series::new(
                "median_pickup_s",
                w.weeks
                    .iter()
                    .zip(&w.median_pickup)
                    .filter_map(|(k, p)| p.map(|p| (wk(k), p)))
                    .collect(),
            ),
            Series::new(
                "active_workers",
                workers
                    .weeks
                    .iter()
                    .zip(&workers.active_workers)
                    .map(|(k, &v)| (wk(k), v as f64))
                    .collect(),
            ),
            Series::new(
                "tasks_top10",
                engagement
                    .weeks
                    .iter()
                    .zip(&engagement.tasks_top10)
                    .map(|(k, &v)| (wk(k), v as f64))
                    .collect(),
            ),
            Series::new(
                "tasks_bot90",
                engagement
                    .weeks
                    .iter()
                    .zip(&engagement.tasks_bot90)
                    .map(|(k, &v)| (wk(k), v as f64))
                    .collect(),
            ),
        ]),
    );

    // Fig 3.
    let by = arrivals::by_weekday(&study);
    let mut s = String::from("weekday,instances\n");
    for d in crowd_core::time::Weekday::ALL {
        let _ = writeln!(s, "{},{}", d.abbrev(), by[d.index()]);
    }
    write("weekday.csv", s);

    // Figs 6/7.
    let cl = load::cluster_load(&study);
    let mut s = String::from("cluster,batches,instances\n");
    for (i, (b, n)) in cl.batches_per_cluster.iter().zip(&cl.instances_per_cluster).enumerate() {
        let _ = writeln!(s, "{i},{b},{n}");
    }
    write("cluster_sizes.csv", s);

    // Fig 8.
    let hh = load::heavy_hitters(&study, 10);
    write(
        "heavy_hitters.csv",
        series_to_csv(
            &hh.iter()
                .map(|h| {
                    Series::new(
                        format!("cluster_{}", h.cluster),
                        h.cumulative.iter().map(|&(k, c)| (f64::from(k.0), c as f64)).collect(),
                    )
                })
                .collect::<Vec<_>>(),
        ),
    );

    // Fig 9.
    let mut s = String::from("category,label,instances\n");
    for d in [
        labels::goal_distribution(&study),
        labels::data_distribution(&study),
        labels::operator_distribution(&study),
    ] {
        for (label, count) in &d.counts {
            let _ = writeln!(s, "{},{label},{count}", d.category);
        }
    }
    write("labels.csv", s);

    // Fig 12.
    let mut all = Vec::new();
    for t in
        [trends::goal_trend(&study), trends::operator_trend(&study), trends::data_trend(&study)]
    {
        all.push(Series::new(
            format!("{}_simple", t.category),
            t.weeks.iter().zip(&t.simple).map(|(k, &v)| (wk(k), v as f64)).collect(),
        ));
        all.push(Series::new(
            format!("{}_complex", t.category),
            t.weeks.iter().zip(&t.complex).map(|(k, &v)| (wk(k), v as f64)).collect(),
        ));
    }
    write("trends.csv", series_to_csv(&all));

    // Fig 14 / Tables 1–3.
    let mut s = String::from("feature,metric,split,n1,n2,median1,median2,p,significant\n");
    for e in methodology::full_grid(&study) {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{:e},{}",
            e.feature.name(),
            e.metric.name(),
            e.split_value,
            e.bin1.n,
            e.bin2.n,
            e.bin1.median,
            e.bin2.median,
            e.p_value,
            e.significant
        );
    }
    write("experiments.csv", s);

    // §4.9.
    let mut s = String::from("metric,scheme,exact,within1,clusters\n");
    for r in prediction::predict_all(&study, 0xC0DE) {
        let _ = writeln!(
            s,
            "{},{:?},{},{},{}",
            r.metric.name(),
            r.scheme,
            r.cv.accuracy,
            r.cv.accuracy_within_1,
            r.n_clusters
        );
    }
    write("prediction.csv", s);

    // Figs 26/27.
    let st = sources::per_source(&study);
    let mut s =
        String::from("source,workers,tasks,avg_tasks_per_worker,mean_trust,rel_task_time\n");
    for x in &st {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{}",
            x.name,
            x.n_workers,
            x.n_tasks,
            x.avg_tasks_per_worker,
            x.mean_trust,
            x.mean_relative_task_time
        );
    }
    write("sources.csv", s);

    // Fig 28.
    let g = geography::distribution(&study);
    let mut s = String::from("country,workers\n");
    for (_, name, count) in &g.countries {
        let _ = writeln!(s, "{name},{count}");
    }
    write("geography.csv", s);

    // Fig 30.
    let l = lifetimes::lifetime_stats(&study);
    let mut s = String::from("lifetime_days,working_days,active_fraction,tasks\n");
    for i in 0..l.lifetimes_days.len() {
        let _ = writeln!(
            s,
            "{},{},{},{}",
            l.lifetimes_days[i], l.working_days[i], l.active_fraction[i], l.tasks[i]
        );
    }
    write("lifetimes.csv", s);

    // Cohorts.
    let cs = cohorts::monthly_cohorts(&study);
    let mut s = String::from("cohort_month,size,month_offset,retention\n");
    for c in &cs {
        for (k, r) in c.retention.iter().enumerate() {
            let _ = writeln!(s, "{},{},{k},{r}", c.month_start.month_year_label(), c.size);
        }
    }
    write("cohorts.csv", s);

    eprintln!("done: 12 files in {}", out.display());
}
