//! # crowd-marketplace
//!
//! Facade crate for the reproduction of *"Understanding Workers, Developing
//! Effective Tasks, and Enhancing Marketplace Dynamics: A Study of a Large
//! Crowdsourcing Marketplace"* (Jain, Das Sarma, Parameswaran, Widom —
//! VLDB 2017).
//!
//! The workspace is organized like the study itself:
//!
//! * [`sim`] generates the dataset (the substitution for the paper's
//!   proprietary 27M-instance marketplace dump);
//! * [`core`] is the relational data model;
//! * [`analytics`] re-derives every figure and table (§3 marketplace, §4
//!   task design, §5 workers) from raw rows;
//! * [`html`], [`cluster`], [`stats`], [`table`], [`classify`] are the
//!   substrates (task-interface HTML, batch clustering, statistics,
//!   columnar aggregation, decision trees);
//! * [`report`] renders figures and tables in the terminal.
//!
//! ## Quickstart
//!
//! ```no_run
//! use crowd_marketplace::prelude::*;
//!
//! // 1. Simulate the marketplace at 1% of the paper's volume.
//! let dataset = simulate(&SimConfig::default_scale(42));
//! // 2. Enrich: cluster batches, extract design features, compute metrics.
//! let study = Study::new(dataset);
//! // 3. Analyze — e.g. paper Table 1.
//! let table1 = crowd_marketplace::analytics::design::summary::disagreement_table(&study);
//! for row in &table1.rows {
//!     println!("{}: {:.3} vs {:.3}", row.bin1_desc, row.bin1_median, row.bin2_median);
//! }
//! ```
//!
//! Run `cargo run --release --bin repro -- all` to regenerate every figure
//! and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crowd_analytics as analytics;
pub use crowd_classify as classify;
pub use crowd_cluster as cluster;
pub use crowd_core as core;
pub use crowd_html as html;
pub use crowd_ingest as ingest;
pub use crowd_report as report;
pub use crowd_sim as sim;
pub use crowd_snapshot as snapshot;
pub use crowd_stats as stats;
pub use crowd_table as table;

/// The most commonly needed items in one import.
pub mod prelude {
    pub use crowd_analytics::Study;
    pub use crowd_core::prelude::*;
    pub use crowd_sim::{simulate, SimConfig};
}

/// Command-line handling shared by the workspace binaries.
///
/// `repro` and `export` accept the same simulation knobs — `--scale`,
/// `--seed`, `--threads`, `--snapshot-dir`, `--no-snapshot`,
/// `--input-dir`, `--shards` — with the same defaults, bounds, and error
/// messages.
/// [`cli::CommonOpts`] owns that contract in one place; each binary keeps
/// its own loop only for its private flags (`--out`, targets, `--help`).
pub mod cli {
    use std::path::PathBuf;

    use crowd_analytics::Study;
    use crowd_snapshot::SnapshotStore;

    /// Options every binary understands: `--scale`, `--seed`,
    /// `--threads`, `--snapshot-dir`, `--no-snapshot`, `--input-dir`,
    /// `--shards`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct CommonOpts {
        /// Fraction of the paper's marketplace volume to simulate, in
        /// `(0, 1]`.
        pub scale: f64,
        /// Master seed for the generative pipeline.
        pub seed: u64,
        /// Worker threads for the parallel pipeline stages; `None` defers
        /// to the `CROWD_THREADS` environment variable, then the host CPU
        /// count.
        pub threads: Option<usize>,
        /// Snapshot cache directory; `None` defers to the
        /// `CROWD_SNAPSHOT_DIR` environment variable.
        pub snapshot_dir: Option<PathBuf>,
        /// Disables the snapshot cache entirely (flag *and* environment).
        pub no_snapshot: bool,
        /// Load the dataset from a previously exported directory (via the
        /// resilient ingest path) instead of simulating.
        pub input_dir: Option<PathBuf>,
        /// Shards the instance table is partitioned into — for the fused
        /// scan and for the snapshot file layout. Bit-invisible to every
        /// result; bounds how much of the table warm starts must touch.
        pub shards: usize,
    }

    impl Default for CommonOpts {
        fn default() -> CommonOpts {
            CommonOpts {
                scale: 0.01,
                seed: 2017,
                threads: None,
                snapshot_dir: None,
                no_snapshot: false,
                input_dir: None,
                shards: 1,
            }
        }
    }

    impl CommonOpts {
        /// Tries to consume `arg` (taking its value from `rest`).
        ///
        /// Returns `Ok(true)` when the flag belongs to the shared set,
        /// `Ok(false)` when the caller should handle it itself, and `Err`
        /// with a user-facing message on a missing or invalid value.
        pub fn accept(
            &mut self,
            arg: &str,
            rest: &mut dyn Iterator<Item = String>,
        ) -> Result<bool, String> {
            match arg {
                "--scale" => {
                    let scale: f64 = rest
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--scale needs a number in (0, 1]")?;
                    // Scales outside (0, 1] either produce an empty
                    // marketplace or extrapolate beyond the paper's
                    // population; reject both.
                    if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
                        return Err(format!("--scale must be in (0, 1], got {scale}"));
                    }
                    self.scale = scale;
                    Ok(true)
                }
                "--seed" => {
                    self.seed = rest
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed needs an integer")?;
                    Ok(true)
                }
                "--threads" => {
                    let threads: usize = rest
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--threads needs a positive integer")?;
                    if threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    self.threads = Some(threads);
                    Ok(true)
                }
                "--snapshot-dir" => {
                    let dir = rest.next().ok_or("--snapshot-dir needs a directory path")?;
                    if dir.is_empty() {
                        return Err("--snapshot-dir needs a directory path".into());
                    }
                    self.snapshot_dir = Some(PathBuf::from(dir));
                    Ok(true)
                }
                "--no-snapshot" => {
                    self.no_snapshot = true;
                    Ok(true)
                }
                "--input-dir" => {
                    let dir = rest.next().ok_or("--input-dir needs a directory path")?;
                    if dir.is_empty() {
                        return Err("--input-dir needs a directory path".into());
                    }
                    self.input_dir = Some(PathBuf::from(dir));
                    Ok(true)
                }
                "--shards" => {
                    let shards: usize = rest
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--shards needs a positive integer")?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    self.shards = shards;
                    Ok(true)
                }
                _ => Ok(false),
            }
        }

        /// Resolves the snapshot store these options select:
        /// `--no-snapshot` disables caching outright, an explicit
        /// `--snapshot-dir` wins otherwise, and absent both the
        /// `CROWD_SNAPSHOT_DIR` environment variable decides (unset ⇒ no
        /// caching — cold runs stay the out-of-the-box behavior).
        pub fn snapshot_store(&self) -> Option<SnapshotStore> {
            if self.no_snapshot {
                return None;
            }
            match &self.snapshot_dir {
                Some(dir) => Some(SnapshotStore::new(dir.clone())),
                None => SnapshotStore::from_env(),
            }
            .map(|s| s.with_shards(self.shards))
        }

        /// Builds the study these options select: `--input-dir` loads a
        /// previously exported dataset through the resilient ingest path
        /// (attaching its [`IngestReport`](crowd_core::IngestReport) to
        /// the study); otherwise the simulator generates it, warm-started
        /// from the snapshot cache when one is configured.
        ///
        /// Progress goes to stderr; an ingest failure comes back as the
        /// typed error's message plus the coverage summary accumulated
        /// before the abort.
        pub fn build_study(&self) -> Result<Study, String> {
            if let Some(dir) = &self.input_dir {
                eprintln!("ingesting dataset from {} …", dir.display());
                let ingested =
                    crowd_ingest::ingest_dir(dir, &crowd_ingest::IngestOptions::default())
                        .map_err(|f| f.to_string())?;
                eprintln!("ingest: {}", ingested.report.summary());
                return Ok(Study::new(ingested.dataset)
                    .with_ingest_report(ingested.report)
                    .with_shards(self.shards));
            }
            let store = self.snapshot_store();
            eprintln!(
                "simulating marketplace (scale {}, seed {}, {} threads{}{}) …",
                self.scale,
                self.seed,
                rayon::current_num_threads(),
                if self.shards > 1 { format!(", {} shards", self.shards) } else { String::new() },
                match &store {
                    Some(s) => format!(", snapshots in {}", s.dir().display()),
                    None => String::new(),
                }
            );
            let cfg = crowd_sim::SimConfig::new(self.seed, self.scale);
            Ok(crowd_snapshot::warm::study_from_config(&cfg, store.as_ref())
                .with_shards(self.shards))
        }

        /// Installs the global thread pool when `--threads` was given.
        /// Call once, before any parallel work.
        pub fn install_thread_pool(&self) -> Result<(), String> {
            if let Some(n) = self.threads {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build_global()
                    .map_err(|_| String::from("failed to configure the thread pool"))?;
            }
            Ok(())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn parse(argv: &[&str]) -> Result<CommonOpts, String> {
            let mut opts = CommonOpts::default();
            let mut rest = argv.iter().map(|s| s.to_string());
            while let Some(arg) = rest.next() {
                if !opts.accept(&arg, &mut rest)? {
                    return Err(format!("unknown argument `{arg}`"));
                }
            }
            Ok(opts)
        }

        #[test]
        fn defaults_match_the_paper_repro() {
            let opts = CommonOpts::default();
            assert_eq!(opts.scale, 0.01);
            assert_eq!(opts.seed, 2017);
            assert_eq!(opts.threads, None);
            assert_eq!(opts.snapshot_dir, None);
            assert!(!opts.no_snapshot);
        }

        #[test]
        fn flags_parse_and_validate() {
            let opts = parse(&["--scale", "0.5", "--seed", "7", "--threads", "4"]).unwrap();
            assert_eq!(
                opts,
                CommonOpts { scale: 0.5, seed: 7, threads: Some(4), ..CommonOpts::default() }
            );
            // Validation path: the (0, 1] scale bound.
            for bad in [["--scale", "0"], ["--scale", "1.5"], ["--scale", "NaN"]] {
                assert!(parse(&bad).is_err(), "{bad:?} must be rejected");
            }
            assert!(parse(&["--threads", "0"]).is_err());
        }

        #[test]
        fn snapshot_flags_parse() {
            let opts = parse(&["--snapshot-dir", "/tmp/snaps"]).unwrap();
            assert_eq!(opts.snapshot_dir, Some(std::path::PathBuf::from("/tmp/snaps")));
            assert!(!opts.no_snapshot);

            let opts = parse(&["--no-snapshot"]).unwrap();
            assert!(opts.no_snapshot);

            // Both together is legal; --no-snapshot wins at resolution time.
            let opts = parse(&["--snapshot-dir", "d", "--no-snapshot"]).unwrap();
            assert!(opts.snapshot_store().is_none());

            assert!(parse(&["--snapshot-dir"]).is_err(), "missing value");
            assert!(parse(&["--snapshot-dir", ""]).is_err(), "empty value");
        }

        #[test]
        fn shards_parse_and_validate() {
            let opts = parse(&["--shards", "16"]).unwrap();
            assert_eq!(opts.shards, 16);
            assert_eq!(CommonOpts::default().shards, 1);
            assert_eq!(parse(&["--shards"]).unwrap_err(), "--shards needs a positive integer");
            assert_eq!(parse(&["--shards", "x"]).unwrap_err(), "--shards needs a positive integer");
            assert_eq!(parse(&["--shards", "0"]).unwrap_err(), "--shards must be at least 1");
        }

        #[test]
        fn input_dir_parses_and_validates() {
            let opts = parse(&["--input-dir", "data/export"]).unwrap();
            assert_eq!(opts.input_dir, Some(std::path::PathBuf::from("data/export")));
            assert!(parse(&["--input-dir"]).is_err(), "missing value");
            assert!(parse(&["--input-dir", ""]).is_err(), "empty value");
            assert_eq!(parse(&["--input-dir"]).unwrap_err(), "--input-dir needs a directory path");
        }

        #[test]
        fn build_study_rejects_a_missing_input_dir() {
            let dir =
                std::env::temp_dir().join(format!("crowd_cli_no_such_dir_{}", std::process::id()));
            let opts = CommonOpts { input_dir: Some(dir), ..CommonOpts::default() };
            let err = match opts.build_study() {
                Err(e) => e,
                Ok(_) => panic!("a missing directory must not build a study"),
            };
            assert!(err.contains("ingest failed"), "typed failure surfaced: {err}");
        }

        #[test]
        fn snapshot_store_resolution_prefers_the_flag() {
            // An explicit directory resolves to a store rooted there,
            // without consulting the environment.
            let opts =
                CommonOpts { snapshot_dir: Some("cache/snaps".into()), ..CommonOpts::default() };
            let store = opts.snapshot_store().expect("flag selects a store");
            assert_eq!(store.dir(), std::path::Path::new("cache/snaps"));
            // --no-snapshot beats everything.
            let opts = CommonOpts { no_snapshot: true, ..opts };
            assert!(opts.snapshot_store().is_none());
        }

        #[test]
        fn error_messages_name_the_flag() {
            assert_eq!(parse(&["--scale", "2"]).unwrap_err(), "--scale must be in (0, 1], got 2");
            assert_eq!(parse(&["--seed", "x"]).unwrap_err(), "--seed needs an integer");
            assert_eq!(parse(&["--threads"]).unwrap_err(), "--threads needs a positive integer");
            assert_eq!(
                parse(&["--snapshot-dir"]).unwrap_err(),
                "--snapshot-dir needs a directory path"
            );
        }

        #[test]
        fn unknown_flags_fall_through_to_the_caller() {
            let mut opts = CommonOpts::default();
            let mut rest = std::iter::empty();
            assert_eq!(opts.accept("--out", &mut rest), Ok(false));
            assert_eq!(opts, CommonOpts::default());
        }
    }
}
