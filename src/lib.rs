//! # crowd-marketplace
//!
//! Facade crate for the reproduction of *"Understanding Workers, Developing
//! Effective Tasks, and Enhancing Marketplace Dynamics: A Study of a Large
//! Crowdsourcing Marketplace"* (Jain, Das Sarma, Parameswaran, Widom —
//! VLDB 2017).
//!
//! The workspace is organized like the study itself:
//!
//! * [`sim`] generates the dataset (the substitution for the paper's
//!   proprietary 27M-instance marketplace dump);
//! * [`core`] is the relational data model;
//! * [`analytics`] re-derives every figure and table (§3 marketplace, §4
//!   task design, §5 workers) from raw rows;
//! * [`html`], [`cluster`], [`stats`], [`table`], [`classify`] are the
//!   substrates (task-interface HTML, batch clustering, statistics,
//!   columnar aggregation, decision trees);
//! * [`report`] renders figures and tables in the terminal.
//!
//! ## Quickstart
//!
//! ```no_run
//! use crowd_marketplace::prelude::*;
//!
//! // 1. Simulate the marketplace at 1% of the paper's volume.
//! let dataset = simulate(&SimConfig::default_scale(42));
//! // 2. Enrich: cluster batches, extract design features, compute metrics.
//! let study = Study::new(dataset);
//! // 3. Analyze — e.g. paper Table 1.
//! let table1 = crowd_marketplace::analytics::design::summary::disagreement_table(&study);
//! for row in &table1.rows {
//!     println!("{}: {:.3} vs {:.3}", row.bin1_desc, row.bin1_median, row.bin2_median);
//! }
//! ```
//!
//! Run `cargo run --release --bin repro -- all` to regenerate every figure
//! and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crowd_analytics as analytics;
pub use crowd_classify as classify;
pub use crowd_cluster as cluster;
pub use crowd_core as core;
pub use crowd_html as html;
pub use crowd_report as report;
pub use crowd_sim as sim;
pub use crowd_stats as stats;
pub use crowd_table as table;

/// The most commonly needed items in one import.
pub mod prelude {
    pub use crowd_analytics::Study;
    pub use crowd_core::prelude::*;
    pub use crowd_sim::{simulate, SimConfig};
}
