//! The pipeline's core contract after parallelization: thread count is a
//! performance knob, never a semantics knob. A run under a single-thread
//! pool and a run under a multi-thread pool must produce bit-identical
//! datasets, batch enrichment, and cluster assignments.

use crowd_analytics::Study;
use crowd_sim::{simulate, SimConfig};
use rayon::ThreadPoolBuilder;

/// Full pipeline at a given thread count, summarized as comparable pieces:
/// (instances, batches, batch-metrics debug, clusters debug).
fn run(threads: usize) -> (usize, String, String, String) {
    let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        let cfg = SimConfig::tiny(2017);
        let ds = simulate(&cfg);
        let instances = format!("{:?}", ds.instances);
        let batches = format!("{:?}", ds.batches);
        let n = ds.instances.len();
        let study = Study::new(ds);
        let metrics: Vec<String> = study.enriched_batches().map(|m| format!("{m:?}")).collect();
        let clusters = format!("{:?}", study.clusters());
        (n, format!("{instances}\n{batches}"), metrics.join("\n"), clusters)
    })
}

#[test]
fn thread_count_does_not_change_results() {
    let single = run(1);
    let quad = run(4);
    assert_eq!(single.0, quad.0, "instance counts diverge");
    assert_eq!(single.1, quad.1, "simulated dataset diverges");
    assert_eq!(single.2, quad.2, "batch enrichment diverges");
    assert_eq!(single.3, quad.3, "cluster assignments diverge");
    assert!(single.0 > 10_000, "run must be non-trivial: {}", single.0);
    assert!(!single.2.is_empty(), "enrichment must produce metrics");
}

#[test]
fn odd_thread_counts_agree_too() {
    // Chunked splits with a remainder (3 threads over n items) exercise the
    // uneven-partition path; results must still match the sequential run.
    let single = run(1);
    let triple = run(3);
    assert_eq!(single, triple);
}
