//! The pipeline's core contract after parallelization: thread count is a
//! performance knob, never a semantics knob. A run under a single-thread
//! pool and a run under a multi-thread pool must produce bit-identical
//! datasets, batch enrichment, and cluster assignments.
//!
//! Since the sharded store landed (DESIGN.md §15), shard count is held to
//! the same contract: partitioning the instance table only re-batches the
//! fixed-chunk scan schedule, so any shards × threads combination must
//! agree bit-for-bit with the sequential single-shard run.

use crowd_analytics::Study;
use crowd_sim::{simulate, SimConfig};
use rayon::ThreadPoolBuilder;

/// Full pipeline at a given thread and shard count, summarized as
/// comparable pieces: (instances, batches, batch-metrics debug, clusters
/// debug, fused debug).
fn run(threads: usize, shards: usize) -> (usize, String, String, String, String) {
    let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        let cfg = SimConfig::tiny(2017);
        let ds = simulate(&cfg);
        let instances = format!("{:?}", ds.instances);
        let batches = format!("{:?}", ds.batches);
        let n = ds.instances.len();
        let study = Study::new(ds).with_shards(shards);
        let metrics: Vec<String> = study.enriched_batches().map(|m| format!("{m:?}")).collect();
        let clusters = format!("{:?}", study.clusters());
        let fused = format!("{:?}", study.fused());
        (n, format!("{instances}\n{batches}"), metrics.join("\n"), clusters, fused)
    })
}

#[test]
fn thread_count_does_not_change_results() {
    let single = run(1, 1);
    let quad = run(4, 1);
    assert_eq!(single.0, quad.0, "instance counts diverge");
    assert_eq!(single.1, quad.1, "simulated dataset diverges");
    assert_eq!(single.2, quad.2, "batch enrichment diverges");
    assert_eq!(single.3, quad.3, "cluster assignments diverge");
    assert_eq!(single.4, quad.4, "fused aggregates diverge");
    assert!(single.0 > 10_000, "run must be non-trivial: {}", single.0);
    assert!(!single.2.is_empty(), "enrichment must produce metrics");
}

#[test]
fn odd_thread_counts_agree_too() {
    // Chunked splits with a remainder (3 threads over n items) exercise the
    // uneven-partition path; results must still match the sequential run.
    let single = run(1, 1);
    let triple = run(3, 1);
    assert_eq!(single, triple);
}

#[test]
fn shard_count_does_not_change_results() {
    // The full shards × threads grid from the acceptance contract: every
    // cell must match the sequential single-shard reference bitwise.
    let reference = run(1, 1);
    for shards in [3, 8] {
        for threads in [1, 4] {
            let cell = run(threads, shards);
            assert_eq!(
                reference, cell,
                "shards={shards} threads={threads} diverges from the 1×1 reference"
            );
        }
    }
}
