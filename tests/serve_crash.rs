//! Kill-point chaos harness: the "crash anywhere" property, end to end.
//!
//! A golden `serve` run (WAL + checkpoints, no crash) reports how many
//! kill points its schedule passes and exports a deterministic state
//! dump. The harness then re-runs the binary with `CROWD_KILL_AT=<k>`
//! armed — the child `SIGKILL`s *itself* at the k-th point, mid-append,
//! mid-rotation, mid-checkpoint, or mid-publish — restarts it with
//! `--resume`, and asserts the recovered final state is **byte-identical**
//! to the never-crashed run: zero accepted-event loss, bit-identical
//! fused aggregates, identical row order.
//!
//! Kill points all sit on the single writer thread, so the schedule is
//! deterministic and every index in `1..=N` is reachable. The quick
//! smoke test probes three structurally interesting points; the
//! `#[ignore]`d matrix sweeps a seeded sample of the whole schedule plus
//! a double-kill (crash during recovery) case — run it with
//! `cargo test --release --test serve_crash -- --ignored`.

#![cfg(unix)]

use std::os::unix::process::ExitStatusExt;
use std::path::PathBuf;
use std::process::{Command, Output};

use crowd_core::rng::stream_seed;

/// One scenario's working area: checkpoint dir, WAL dir, export path.
struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new(tag: &str) -> Dirs {
        let root =
            std::env::temp_dir().join(format!("crowd_serve_crash_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scenario dir");
        Dirs { root }
    }

    fn export(&self) -> PathBuf {
        self.root.join("state.txt")
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// The fixed workload: small enough for debug-profile CI, large enough
/// to cross several checkpoints and WAL segment rotations, so the kill
/// schedule covers append/fsync/rotate/retire/ckpt/publish points.
fn serve_cmd(dirs: &Dirs, resume: bool) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    cmd.args([
        "--scale",
        "0.0004",
        "--seed",
        "29",
        "--readers",
        "0",
        "--batch-events",
        "512",
        "--checkpoint-every",
        "4000",
        "--fsync-every",
        "4",
        "--wal-segment-bytes",
        "65536",
    ]);
    cmd.arg("--checkpoint-dir").arg(dirs.root.join("ckpt"));
    cmd.arg("--wal-dir").arg(dirs.root.join("wal"));
    cmd.arg("--export-state").arg(dirs.export());
    if resume {
        cmd.arg("--resume");
    }
    // Never inherit an armed kill point or report flag from the
    // environment; each run opts in explicitly.
    cmd.env_remove("CROWD_KILL_AT");
    cmd.env_remove("CROWD_KILL_REPORT");
    cmd
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs the never-crashed golden workload once; returns its exported
/// state and the length of the kill-point schedule.
fn golden() -> (Vec<u8>, u64) {
    let dirs = Dirs::new("golden");
    let out =
        serve_cmd(&dirs, false).env("CROWD_KILL_REPORT", "1").output().expect("spawn golden serve");
    assert!(out.status.success(), "golden run failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let stdout = stdout_of(&out);
    let points = stdout
        .lines()
        .find_map(|l| l.strip_prefix("killpoints_passed="))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("golden run printed no kill-point count:\n{stdout}"));
    assert!(points > 20, "kill schedule suspiciously short ({points} points)");
    let state = std::fs::read(dirs.export()).expect("golden export");
    (state, points)
}

/// Runs the workload with the `at`-th kill point armed and asserts the
/// child actually died by SIGKILL (not a clean or error exit).
fn run_killed(dirs: &Dirs, at: u64) {
    let out = serve_cmd(dirs, false)
        .env("CROWD_KILL_AT", at.to_string())
        .output()
        .expect("spawn killed serve");
    assert_eq!(
        out.status.signal(),
        Some(libc_sigkill()),
        "kill point {at}: child should die by SIGKILL, got {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

/// SIGKILL's number without depending on libc: it is 9 on every unix.
fn libc_sigkill() -> i32 {
    9
}

/// Resumes after a crash; returns the exported state. `kill_at` arms a
/// kill point *during recovery* for the double-kill scenario.
fn resume(dirs: &Dirs, kill_at: Option<u64>) -> Option<Vec<u8>> {
    let mut cmd = serve_cmd(dirs, true);
    if let Some(at) = kill_at {
        cmd.env("CROWD_KILL_AT", at.to_string());
    }
    let out = cmd.output().expect("spawn resume serve");
    if kill_at.is_some() {
        assert_eq!(
            out.status.signal(),
            Some(libc_sigkill()),
            "recovery run should also have been killed, got {:?}",
            out.status
        );
        return None;
    }
    assert!(out.status.success(), "resume failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let stdout = stdout_of(&out);
    assert!(
        stdout.lines().any(|l| l.starts_with("recovery_ms=")),
        "resume must report its recovery time:\n{stdout}"
    );
    Some(std::fs::read(dirs.export()).expect("resumed export"))
}

fn assert_recovers_identically(tag: &str, at: u64, golden_state: &[u8]) {
    let dirs = Dirs::new(tag);
    run_killed(&dirs, at);
    let state = resume(&dirs, None).expect("clean resume");
    assert_eq!(
        state, golden_state,
        "kill point {at}: recovered state diverged from the never-crashed run \
         (dump them with --export-state to diff)"
    );
}

#[test]
fn killed_runs_recover_bit_identical_state_smoke() {
    let (golden_state, points) = golden();
    // Three structurally distinct crash sites: during the very first
    // batch, mid-stream, and at the last point before clean shutdown.
    for (i, at) in [2, points / 2, points].into_iter().enumerate() {
        assert_recovers_identically(&format!("smoke{i}"), at, &golden_state);
    }
}

#[test]
#[ignore = "seeded kill-point sweep; run with --ignored (ideally --release)"]
fn seeded_kill_matrix_recovers_bit_identical_state() {
    let (golden_state, points) = golden();
    // A seeded sample across the whole schedule. stream_seed is the
    // repo-wide deterministic splitmix: same seed, same matrix, every
    // run and every machine.
    const SEED: u64 = 0xC4A05;
    let mut picked: Vec<u64> = (0..12).map(|i| 1 + stream_seed(SEED, i) % points).collect();
    picked.sort_unstable();
    picked.dedup();
    for (i, at) in picked.into_iter().enumerate() {
        assert_recovers_identically(&format!("matrix{i}"), at, &golden_state);
    }
}

#[test]
#[ignore = "double-kill (crash during recovery); run with --ignored"]
fn crash_during_recovery_still_recovers() {
    let (golden_state, points) = golden();
    let dirs = Dirs::new("double");
    // First crash mid-stream, second crash early in the recovery run
    // (recovery replays the WAL tail and keeps ingesting, so its own
    // schedule passes plenty of points), then a clean final resume.
    run_killed(&dirs, points * 2 / 3);
    assert!(resume(&dirs, Some(3)).is_none());
    let state = resume(&dirs, None).expect("final resume");
    assert_eq!(state, golden_state, "double-kill recovery diverged from the golden run");
}
