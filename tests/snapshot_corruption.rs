//! Corruption matrix for the snapshot cache (DESIGN.md §13): every way a
//! snapshot file can be damaged must (a) be detected as its own failure
//! class, (b) silently fall back to a fresh simulation with results
//! identical to a never-cached run, and (c) leave behind a freshly
//! rewritten, valid snapshot. Correctness must never depend on the cache.

use std::path::PathBuf;

use crowd_analytics::Study;
use crowd_sim::{simulate, SimConfig};
use crowd_snapshot::{warm, SnapshotError, SnapshotStore, FORMAT_VERSION};

fn temp_store(tag: &str) -> SnapshotStore {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("crowd-snap-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::new(dir)
}

/// Labels of the sampled batches — the artifact most sensitive to the
/// derived section being wrong.
fn cluster_labels(study: &Study) -> Vec<u32> {
    study.enriched_batches().map(|m| m.cluster).collect()
}

/// Writes a valid snapshot, damages it with `mutate`, checks the damage is
/// detected as `expected`, then asserts the warm entry point recovers
/// silently (bit-identical study) and rewrites a loadable snapshot.
fn assert_recovers(tag: &str, mutate: impl FnOnce(&mut Vec<u8>), expected: &str) {
    let cfg = SimConfig::tiny(401);
    let baseline = Study::new(simulate(&cfg));
    let store = temp_store(tag);

    let _ = warm::study_from_config(&cfg, Some(&store));
    let path = store.path_for(&cfg);
    let mut bytes = std::fs::read(&path).expect("snapshot was written");
    mutate(&mut bytes);
    std::fs::write(&path, &bytes).expect("write corrupted snapshot");

    let err = store.load(&cfg).expect_err("corruption must be detected");
    let class = match err {
        SnapshotError::Io(_) => "io",
        SnapshotError::BadMagic => "magic",
        SnapshotError::VersionMismatch { .. } => "version",
        SnapshotError::FingerprintMismatch { .. } => "fingerprint",
        SnapshotError::ChecksumMismatch => "checksum",
        SnapshotError::Truncated => "truncated",
        SnapshotError::Corrupt(_) => "corrupt",
        SnapshotError::ShardCorrupt { .. } => "shard",
    };
    assert_eq!(class, expected, "{tag}: wrong failure class ({err})");

    // Silent fallback: same study as a never-cached run.
    let recovered = warm::study_from_config(&cfg, Some(&store));
    assert_eq!(recovered.dataset().instances, baseline.dataset().instances, "{tag}");
    assert_eq!(cluster_labels(&recovered), cluster_labels(&baseline), "{tag}");

    // And the bad file was overwritten with a valid one.
    let reloaded = store.load(&cfg).unwrap_or_else(|e| panic!("{tag}: not rewritten: {e}"));
    assert_eq!(reloaded.dataset.instances, baseline.dataset().instances, "{tag}");
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn truncated_file_falls_back() {
    assert_recovers("trunc", |b| b.truncate(b.len() - 7), "truncated");
}

#[test]
fn wrong_magic_falls_back() {
    assert_recovers("magic", |b| b[0] ^= 0xFF, "magic");
}

#[test]
fn bumped_format_version_falls_back() {
    assert_recovers(
        "version",
        |b| b[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes()),
        "version",
    );
}

#[test]
fn flipped_checksum_byte_falls_back() {
    // Byte 32 is the first byte of the stored payload checksum.
    assert_recovers("checksum", |b| b[32] ^= 0x01, "checksum");
}

#[test]
fn fingerprint_mismatch_falls_back() {
    // Bytes 16..24 hold the config fingerprint: a snapshot written for a
    // different config (or a renamed file) must never be served.
    assert_recovers("fingerprint", |b| b[16] ^= 0x01, "fingerprint");
}

#[test]
fn flipped_payload_byte_falls_back() {
    // Damage at the end of the file lands in the last instance-shard
    // section, which carries its own checksum in the shard directory —
    // so the failure is shard-granular, not a whole-file checksum error.
    assert_recovers("payload", |b| *b.last_mut().unwrap() ^= 0x40, "shard");
}

#[test]
fn flipped_meta_byte_falls_back() {
    // Damage just past the header lands in the meta payload (entities,
    // derived results, shard directory), which the header checksum covers.
    assert_recovers("meta", |b| b[41] ^= 0x10, "checksum");
}

/// A damaged shard section must fail alone: its neighbors stay readable
/// through the sharded reader, the failure names the shard, and the warm
/// entry point still silently falls back to a fresh simulation.
#[test]
fn damaged_shard_fails_independently_and_warm_recovers() {
    // Shards are CHUNK-aligned (8192 rows), so a genuinely 3-sharded file
    // needs more rows than `SimConfig::tiny` produces.
    let cfg = SimConfig::new(402, 0.002);
    let baseline = Study::new(simulate(&cfg));
    let store = temp_store("shard-independent").with_shards(3);

    let _ = warm::study_from_config(&cfg, Some(&store));
    let path = store.path_for(&cfg);
    let mut bytes = std::fs::read(&path).expect("snapshot was written");

    // Locate the middle shard's section: sections start right after the
    // 40-byte header plus the meta payload (length at header bytes 24..32).
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let sections_start = 40 + payload_len;
    let reader = store.open_reader(&cfg).expect("snapshot opens clean");
    let dir = reader.directory();
    assert_eq!(dir.n_shards(), 3, "dataset must split into 3 shards here");
    let shard1_off = sections_start + dir.sections()[0].byte_len as usize;
    drop(reader);
    bytes[shard1_off + 16] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corrupted snapshot");

    // Neighboring shards still load; only shard 1 reports corruption.
    let mut reader = store.open_reader(&cfg).expect("header and meta are intact");
    assert!(reader.read_shard(0).is_ok(), "shard 0 must stay readable");
    assert!(reader.read_shard(2).is_ok(), "shard 2 must stay readable");
    match reader.read_shard(1) {
        Err(SnapshotError::ShardCorrupt { shard: 1 }) => {}
        other => panic!("expected ShardCorrupt {{ shard: 1 }}, got {other:?}"),
    }
    // Whole-file paths surface the same shard-granular error.
    match store.load(&cfg) {
        Err(SnapshotError::ShardCorrupt { shard: 1 }) => {}
        other => panic!("load: expected ShardCorrupt {{ shard: 1 }}, got {other:?}"),
    }

    // Warm path at shards > 1 (DESIGN.md §16): header and meta are
    // intact, so the columns-optional warm hit succeeds without touching
    // the damaged section. The corruption is caught lazily when the
    // fused scan streams that shard; the scan falls back to a fresh
    // simulation, so every analytics result still matches a never-cached
    // run even though the file itself is left as-is.
    let recovered = warm::study_from_config(&cfg, Some(&store));
    assert_eq!(recovered.n_instances(), baseline.dataset().instances.len());
    assert_eq!(cluster_labels(&recovered), cluster_labels(&baseline));
    assert_eq!(recovered.fused(), baseline.fused(), "lazy fallback must match baseline");
    let _ = std::fs::remove_dir_all(store.dir());
}
