//! Calibration tests: does the generated data, *as re-analyzed by the
//! analytics pipeline*, reproduce the paper's reported shapes?
//!
//! Each test names the paper statistic it checks. Tolerances are loose
//! where reduced scale (default 1% volume) structurally limits fidelity —
//! see EXPERIMENTS.md for the full paper-vs-measured accounting.

use std::sync::OnceLock;

use crowd_marketplace::analytics::design::methodology::{run_experiment, Feature};
use crowd_marketplace::analytics::design::metrics::Metric;
use crowd_marketplace::analytics::design::{prediction, summary};
use crowd_marketplace::analytics::marketplace::{arrivals, availability, labels, load};
use crowd_marketplace::analytics::workers::{geography, lifetimes, sources, workload};
use crowd_marketplace::analytics::Study;
use crowd_marketplace::prelude::*;

fn study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| Study::new(simulate(&SimConfig::default_scale(20_17))))
}

#[test]
fn sec2_2_dataset_scale() {
    let s = study().dataset().summary();
    // At 1% volume: ~270k instances, sqrt-scaled populations.
    assert!((243_000..=297_000).contains(&s.instances), "instances {}", s.instances);
    assert_eq!(s.sources, 139, "Table 4");
    assert_eq!(s.countries, 148, "Fig 28");
    let sample_frac = s.batches_sampled as f64 / s.batches as f64;
    assert!((0.16..=0.26).contains(&sample_frac), "12k/58k ≈ 0.207, got {sample_frac}");
    let coverage = s.distinct_tasks_sampled as f64 / s.distinct_tasks as f64;
    assert!((0.68..=0.85).contains(&coverage), "76% task coverage, got {coverage}");
}

#[test]
fn sec3_1_load_burstiness() {
    let d = arrivals::daily_load(study(), Timestamp::from_ymd(2015, 1, 1)).unwrap();
    assert!(d.peak_ratio > 5.0, "busiest day ≫ median (paper 30×): {}", d.peak_ratio);
    assert!(d.trough_ratio < 0.2, "lightest day ≪ median (paper 4e-4): {}", d.trough_ratio);
}

#[test]
fn sec3_1_weekday_vs_weekend() {
    let by = arrivals::by_weekday(study());
    let weekday = by[..5].iter().sum::<u64>() as f64 / 5.0;
    let weekend = by[5..].iter().sum::<u64>() as f64 / 2.0;
    let ratio = weekday / weekend;
    assert!((1.2..=4.0).contains(&ratio), "weekday up to 2× weekend (Fig 3): {ratio}");
}

#[test]
fn sec3_2_stable_workforce_absorbs_bursty_load() {
    let s = study();
    let workers = availability::weekly_workers(s);
    let arrivals = arrivals::weekly(s);
    let cut = Timestamp::from_ymd(2015, 1, 1).week();
    let spread = |xs: &[f64]| {
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        v[v.len() * 95 / 100] / v[v.len() / 2]
    };
    let wv: Vec<f64> = workers
        .weeks
        .iter()
        .zip(&workers.active_workers)
        .filter(|(w, &c)| **w >= cut && c > 0)
        .map(|(_, &c)| c as f64)
        .collect();
    let av: Vec<f64> = arrivals
        .weeks
        .iter()
        .zip(&arrivals.instances)
        .filter(|(w, &c)| **w >= cut && c > 0)
        .map(|(_, &c)| c as f64)
        .collect();
    assert!(
        spread(&av) > 2.0 * spread(&wv),
        "Fig 2a vs Fig 4: load p95/median {} ≫ workers {}",
        spread(&av),
        spread(&wv)
    );
}

#[test]
fn sec3_2_top_decile_carries_the_flux() {
    let e = availability::engagement_split(study());
    assert!(
        e.top10_task_share > 0.70,
        "§5.2/Fig 5b: >80% at full scale, got {}",
        e.top10_task_share
    );
}

#[test]
fn sec3_3_cluster_skew() {
    let l = load::cluster_load(study());
    let frac_one_off = l.one_off_clusters as f64 / l.batches_per_cluster.len() as f64;
    assert!(frac_one_off > 0.6, "most tasks are one-off (Fig 6): {frac_one_off}");
    assert!(
        l.batches_per_cluster.iter().filter(|&&b| b > 30).count() >= 3,
        "heavy hitters exist (>100 batches at full scale)"
    );
    let max = *l.instances_per_cluster.iter().max().unwrap() as f64;
    assert!(max / l.median_instances_per_cluster > 50.0, "Fig 7 skew");
}

#[test]
fn sec3_4_label_shares() {
    let s = study();
    let g = labels::goal_distribution(s);
    // Fig 9a: LU ≈17%, T ≈13% — the two leaders.
    assert!(g.share("LU") > 0.12, "LU {}", g.share("LU"));
    assert!(g.share("T") > 0.08, "T {}", g.share("T"));
    let d = labels::data_distribution(s);
    assert!(d.share("Text") > 0.30, "text ≈40% (Fig 9b): {}", d.share("Text"));
    assert!(d.share("Image") > 0.15, "image ≈26%: {}", d.share("Image"));
    let o = labels::operator_distribution(s);
    assert!(o.share("Filt") > 0.25, "filter ≈33% (Fig 9c): {}", o.share("Filt"));
    assert!(o.share("Rate") > 0.05, "rate ≈13%: {}", o.share("Rate"));
}

#[test]
fn sec3_4_correlations() {
    let s = study();
    let og = labels::operator_given_goal(s);
    assert!(og.percent("T", "Ext") > 30.0, "transcription is extraction-driven");
    let dg = labels::data_given_goal(s);
    assert!(dg.percent("SR", "Web") > 15.0, "SR leans on web data (37% in paper)");
}

#[test]
fn sec4_1_pickup_dominates() {
    use crowd_marketplace::analytics::design::metrics::latency_decomposition;
    let d = latency_decomposition(study());
    assert!(
        d.median_pickup_to_task_ratio > 10.0,
        "pickup orders of magnitude above task time (Fig 13): {}×",
        d.median_pickup_to_task_ratio
    );
}

#[test]
fn table1_disagreement_effects() {
    let t = summary::disagreement_table(study());
    let row = |f: Feature| t.rows.iter().find(|r| r.feature == f).unwrap();
    // Ratios within a factor ~2 of the paper's.
    let words = row(Feature::Words);
    let ratio = words.bin2_median / words.bin1_median;
    assert!((0.5..=0.95).contains(&ratio), "#words 0.108/0.147 = 0.73, got {ratio}");
    let tb = row(Feature::TextBoxes);
    let ratio = tb.bin2_median / tb.bin1_median;
    assert!((1.2..=2.6).contains(&ratio), "#text-boxes 0.160/0.102 = 1.57, got {ratio}");
    let items = row(Feature::Items);
    assert!(items.bin2_median < items.bin1_median, "#items cut disagreement");
    let ex = row(Feature::Examples);
    assert!(ex.bin2_median < ex.bin1_median, "#examples cut disagreement");
}

#[test]
fn table2_task_time_effects() {
    let t = summary::task_time_table(study());
    let row = |f: Feature| t.rows.iter().find(|r| r.feature == f).unwrap();
    let tb = row(Feature::TextBoxes);
    let ratio = tb.bin2_median / tb.bin1_median;
    assert!((1.5..=3.5).contains(&ratio), "285.7/119 = 2.4, got {ratio}");
    let items = row(Feature::Items);
    assert!(items.bin2_median < items.bin1_median, "136/230 direction");
    let img = row(Feature::Images);
    let ratio = img.bin2_median / img.bin1_median;
    assert!((0.45..=0.95).contains(&ratio), "129/183.6 = 0.70, got {ratio}");
}

#[test]
fn table3_pickup_effects() {
    let t = summary::pickup_time_table(study());
    let row = |f: Feature| t.rows.iter().find(|r| r.feature == f).unwrap();
    let ex = row(Feature::Examples);
    let ratio = ex.bin2_median / ex.bin1_median;
    assert!(ratio < 0.45, "1353/6303 = 0.21, got {ratio}");
    let img = row(Feature::Images);
    let ratio = img.bin2_median / img.bin1_median;
    assert!(ratio < 0.6, "2431/7838 = 0.31, got {ratio}");
    let items = row(Feature::Items);
    assert!(items.bin2_median > items.bin1_median, "8132 > 4521 direction");
}

#[test]
fn sec4_3_drilldown_gather_vs_rate() {
    use crowd_core::labels::Operator;
    use crowd_marketplace::analytics::design::methodology::LabelFilter;
    let s = study();
    // Fig 25a/b: #words effect is pronounced for Gather, weak for Rate.
    let gather = run_experiment(
        s,
        Feature::Words,
        Metric::Disagreement,
        Some(LabelFilter::Operator(Operator::Gather)),
    );
    if let Some(g) = gather {
        assert!(g.effect() < 0.0, "words help gather tasks");
    }
}

#[test]
fn sec4_9_prediction_shapes() {
    let s = study();
    let range_pickup =
        prediction::predict(s, Metric::PickupTime, prediction::Scheme::ByRange, 42).unwrap();
    // Skewed range buckets → high exact accuracy (paper 98%).
    assert!(range_pickup.cv.accuracy > 0.55, "{}", range_pickup.cv.accuracy);
    assert!(
        range_pickup.bucket_counts[0] > range_pickup.n_clusters / 2,
        "first bucket dominates: {:?}",
        range_pickup.bucket_counts
    );
    let pct = prediction::predict(s, Metric::Disagreement, prediction::Scheme::ByPercentiles, 42)
        .unwrap();
    assert!(pct.cv.accuracy > 0.12, "percentile beats 10% chance: {}", pct.cv.accuracy);
    assert!(pct.cv.accuracy_within_1 > pct.cv.accuracy, "±1 tolerance helps");
}

#[test]
fn sec5_1_source_structure() {
    let s = study();
    let stats = sources::per_source(s);
    let (_, share) = sources::top_by_tasks(&stats, 10);
    assert!(share > 0.85, "top-10 sources ≈95% of tasks: {share}");
    let q = sources::quality_stats(s, &stats);
    assert!(q.internal_task_share < 0.08, "internal ≈2%: {}", q.internal_task_share);
    let amt = stats.iter().find(|x| x.name == "amt");
    if let Some(amt) = amt {
        if amt.n_tasks > 300 {
            assert!(amt.mean_trust < 0.83, "amt ≈0.75: {}", amt.mean_trust);
            assert!(amt.mean_relative_task_time > 2.0, "amt >5×: {}", amt.mean_relative_task_time);
        }
    }
}

#[test]
fn fig28_geography() {
    let g = geography::distribution(study());
    assert_eq!(g.countries[0].1, "USA");
    assert!((0.40..=0.62).contains(&g.top_share(5)), "top-5 ≈50%: {}", g.top_share(5));
    assert!(g.n_countries() > 100, "148 countries at full scale: {}", g.n_countries());
}

#[test]
fn sec5_2_workload_skew() {
    let d = workload::distribution(study());
    assert!(d.top10_share > 0.7, ">80% by top decile: {}", d.top10_share);
    assert!(d.under_one_hour_fraction > 0.8, ">90% under 1h/day: {}", d.under_one_hour_fraction);
}

#[test]
fn sec5_3_lifetimes() {
    let l = lifetimes::lifetime_stats(study());
    assert!(
        (0.30..=0.65).contains(&l.one_day_fraction),
        "52.7% one-day (assignment-starved at reduced scale): {}",
        l.one_day_fraction
    );
    assert!(
        l.one_day_task_share < 0.10,
        "one-day workers ≈2.4% of tasks: {}",
        l.one_day_task_share
    );
    assert!(l.short_lifetime_fraction > 0.55, "79% under 100 days: {}", l.short_lifetime_fraction);
    assert!(l.active_task_share > 0.6, "active workers ≈83% of tasks: {}", l.active_task_share);
}

#[test]
fn sec5_4_active_trust() {
    let t = lifetimes::active_trust(study()).unwrap();
    assert!(t.mean > 0.85 && t.mean < 0.97, "≈0.91: {}", t.mean);
    assert!(t.p10 > 0.78, "90% above 0.84: p10 = {}", t.p10);
}
