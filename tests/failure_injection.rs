//! Failure-injection tests: malformed inputs, degenerate datasets, and
//! boundary conditions across the pipeline.

use crowd_marketplace::analytics::design::{methodology, prediction, summary};
use crowd_marketplace::analytics::marketplace::{arrivals, labels, load, trends};
use crowd_marketplace::analytics::workers::{geography, lifetimes, sources, workload};
use crowd_marketplace::analytics::Study;
use crowd_marketplace::prelude::*;

/// A dataset with a single batch, single worker, single instance.
fn minimal_dataset() -> Dataset {
    let mut b = DatasetBuilder::new();
    let s = b.add_source(Source::new("solo", SourceKind::OnDemand));
    let c = b.add_country("Nowhere");
    let w = b.add_worker(Worker::new(s, c));
    let tt = b.add_task_type(TaskType::new("only task").with_goal(Goal::QualityAssurance));
    let t0 = Timestamp::from_ymd(2015, 6, 1);
    let batch = b.add_batch(Batch::new(tt, t0).with_html("<p>judge this</p>"));
    b.add_instance(TaskInstance {
        batch,
        item: ItemId::new(0),
        worker: w,
        start: t0 + Duration::from_secs(60),
        end: t0 + Duration::from_secs(90),
        trust: 0.8,
        answer: Answer::Choice(0),
    });
    b.finish().unwrap()
}

#[test]
fn every_analysis_survives_an_empty_dataset() {
    let s = Study::new(DatasetBuilder::new().finish().unwrap());
    assert!(arrivals::weekly(&s).weeks.is_empty());
    assert_eq!(arrivals::by_weekday(&s), [0; 7]);
    assert!(arrivals::daily_load(&s, Timestamp::from_ymd(2015, 1, 1)).is_none());
    assert!(load::cluster_load(&s).batches_per_cluster.is_empty());
    assert!(load::heavy_hitters(&s, 10).is_empty());
    assert_eq!(labels::goal_distribution(&s).total(), 0);
    assert!(trends::goal_trend(&s).weeks.is_empty());
    assert!(methodology::full_grid(&s).is_empty());
    assert!(summary::disagreement_table(&s).rows.is_empty());
    assert!(prediction::predict_all(&s, 1).is_empty());
    assert!(sources::per_source(&s).is_empty());
    assert_eq!(geography::distribution(&s).total_workers, 0);
    assert!(workload::distribution(&s).tasks_by_rank.is_empty());
    assert!(lifetimes::lifetime_stats(&s).lifetimes_days.is_empty());
    assert!(lifetimes::active_trust(&s).is_none());
}

#[test]
fn every_analysis_survives_a_single_instance() {
    let s = Study::new(minimal_dataset());
    // One instance: disagreement undefined (no pair), but nothing panics.
    let m = s.enriched_batches().next().unwrap();
    assert_eq!(m.disagreement, None, "one answer has no pairs");
    assert_eq!(m.n_items, 1);
    let w = arrivals::weekly(&s);
    assert_eq!(w.instances.iter().sum::<u64>(), 1);
    assert_eq!(geography::distribution(&s).total_workers, 1);
    let l = lifetimes::lifetime_stats(&s);
    assert_eq!(l.one_day_fraction, 1.0);
    // Experiments need ≥8 clusters: they decline gracefully.
    assert!(methodology::full_grid(&s).is_empty());
}

#[test]
fn malformed_batch_html_degrades_to_default_features() {
    let mut ds = minimal_dataset();
    ds.batches[0].html = Some("<div <<< not html".into());
    let s = Study::new(ds);
    let m = s.enriched_batches().next().unwrap();
    assert_eq!(m.features, crowd_html::ExtractedFeatures::default());
}

#[test]
fn clock_skewed_instances_are_rejected_at_build() {
    let mut ds = minimal_dataset();
    let skewed_end = ds.instances.row(0).start - Duration::from_secs(10);
    ds.instances.set_end(0, skewed_end);
    assert!(ds.validate().is_err());
}

#[test]
fn instance_predating_its_batch_is_tolerated_by_analytics() {
    // Real-world logs contain clock skew; pickup time goes negative but
    // the analyses must not panic.
    let mut ds = minimal_dataset();
    let skewed_start = ds.batches[0].created_at - Duration::from_secs(30);
    ds.instances.set_start(0, skewed_start);
    ds.instances.set_end(0, skewed_start + Duration::from_secs(10));
    let s = Study::new(ds);
    let m = s.enriched_batches().next().unwrap();
    assert!(m.pickup_time.unwrap() < 0.0);
    let _ = arrivals::weekly(&s);
    let _ = crowd_marketplace::analytics::design::metrics::latency_decomposition(&s);
}

#[test]
fn unlabeled_world_yields_no_design_experiments() {
    let mut ds = simulate(&SimConfig::new(3, 0.0005));
    for t in &mut ds.task_types {
        t.goals = LabelSet::empty();
        t.operators = LabelSet::empty();
        t.data_types = LabelSet::empty();
    }
    let s = Study::new(ds);
    assert_eq!(s.labeled_clusters().count(), 0);
    assert!(methodology::full_grid(&s).is_empty());
    assert_eq!(labels::goal_distribution(&s).total(), 0);
}

#[test]
fn single_worker_marketplace() {
    // All instances by one worker: engagement split and workload must not
    // divide by zero.
    let mut b = DatasetBuilder::new();
    let src = b.add_source(Source::new("one", SourceKind::Dedicated));
    let c = b.add_country("X");
    let w = b.add_worker(Worker::new(src, c));
    let tt = b.add_task_type(TaskType::new("t"));
    let t0 = Timestamp::from_ymd(2015, 3, 2);
    let batch = b.add_batch(Batch::new(tt, t0).with_html("<p>q</p>"));
    for i in 0..10 {
        b.add_instance(TaskInstance {
            batch,
            item: ItemId::new(i / 2),
            worker: w,
            start: t0 + Duration::from_secs(100 + i64::from(i) * 50),
            end: t0 + Duration::from_secs(130 + i64::from(i) * 50),
            trust: 0.9,
            answer: Answer::Choice(0),
        });
    }
    let s = Study::new(b.finish().unwrap());
    let e = crowd_marketplace::analytics::marketplace::availability::engagement_split(&s);
    assert_eq!(e.top10_task_share, 1.0, "the single worker is the top decile");
    let wl = workload::distribution(&s);
    assert_eq!(wl.tasks_by_rank, vec![10]);
    assert_eq!(wl.top10_share, 1.0);
}

#[test]
fn all_skipped_answers_give_full_disagreement() {
    let mut ds = minimal_dataset();
    // Add a second judgment on the same item, both skipped.
    ds.instances.set_answer(0, Answer::Skipped);
    let mut extra = ds.instances.row(0).to_owned();
    extra.answer = Answer::Skipped;
    ds.instances.push(extra);
    let s = Study::new(ds);
    let m = s.enriched_batches().next().unwrap();
    assert_eq!(m.disagreement, Some(1.0), "skips never agree (§4.1)");
}

// ---------------------------------------------------------------------------
// import_dir failure paths: every table × {truncated header, wrong field
// count, unparsable value, dangling id} must come back as a typed
// `CoreError` naming the right line — never a panic, never a partial load.
// ---------------------------------------------------------------------------

mod import_faults {
    use super::minimal_dataset;
    use crowd_marketplace::core::csv::{export_dir, import_dir, Table};
    use crowd_marketplace::core::error::CoreError;
    use std::path::{Path, PathBuf};

    fn exported(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd_failinj_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        export_dir(&minimal_dataset(), &dir).unwrap();
        dir
    }

    fn corrupt(dir: &Path, table: Table, f: impl FnOnce(String) -> String) {
        let path = dir.join(table.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, f(text)).unwrap();
    }

    /// 1-based line number the next appended record will start on.
    fn next_line(dir: &Path, table: Table) -> usize {
        let text = std::fs::read_to_string(dir.join(table.file_name())).unwrap();
        text.matches('\n').count() + 1
    }

    fn expect_csv_error(dir: &Path, want_line: usize, want_msg: &str, context: &str) {
        match import_dir(dir) {
            Err(CoreError::Csv { line, message }) => {
                assert_eq!(line, want_line, "{context}: wrong line in `{message}`");
                assert!(
                    message.contains(want_msg),
                    "{context}: `{message}` does not mention `{want_msg}`"
                );
            }
            other => panic!("{context}: expected a CSV error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_headers_are_typed_errors_on_line_one() {
        for table in Table::ALL {
            let dir = exported("hdr");
            corrupt(&dir, table, |text| {
                let header = text.lines().next().unwrap();
                let keep = header.len() / 2;
                format!("{}\n{}", &header[..keep], text.split_once('\n').unwrap().1)
            });
            expect_csv_error(&dir, 1, "expected header", table.name());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn wrong_field_counts_are_typed_errors_with_the_right_line() {
        for table in Table::ALL {
            let dir = exported("arity");
            let line = next_line(&dir, table);
            corrupt(&dir, table, |mut text| {
                // One more field than any table has.
                text.push_str(&"x,".repeat(Table::Instances.arity() + 1));
                text.push_str("x\n");
                text
            });
            expect_csv_error(&dir, line, "fields", table.name());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn unparsable_values_are_typed_errors_with_the_right_line() {
        // A right-arity record whose typed field cannot parse. `countries`
        // has no typed field, so its slot is an unterminated quote — the
        // lexer-level equivalent.
        let bad: [(Table, &str, &str); 6] = [
            (Table::Sources, "nm,badkind", "bad source kind"),
            (Table::Countries, "\"unterminated", "unterminated quoted field"),
            (Table::Workers, "x,y", "bad source id"),
            (Table::TaskTypes, "t,x,0,0,2", "bad goal bits"),
            (Table::Batches, "0,notatime,1,<p>x</p>", "bad created_at"),
            (Table::Instances, "0,0,0,100,200,zz,S", "bad trust"),
        ];
        for (table, row, msg) in bad {
            let dir = exported("value");
            let line = next_line(&dir, table);
            corrupt(&dir, table, |mut text| {
                text.push_str(row);
                text.push('\n');
                text
            });
            expect_csv_error(&dir, line, msg, table.name());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn dangling_ids_are_typed_errors_naming_the_referenced_table() {
        // Rows that parse but point at entities that do not exist; the
        // builder's referential validation rejects the assembled dataset.
        let bad: [(Table, &str, &str); 3] = [
            (Table::Workers, "9,0", "sources"),
            (Table::Batches, "9,1000,0,", "task_types"),
            (Table::Instances, "9,0,0,100,200,0.5,S", "batches"),
        ];
        for (table, row, referenced) in bad {
            let dir = exported("dangling");
            corrupt(&dir, table, |mut text| {
                text.push_str(row);
                text.push('\n');
                text
            });
            match import_dir(&dir) {
                Err(CoreError::DanglingReference { table: t, index: 9, .. }) => {
                    assert_eq!(t, referenced, "{} row must dangle into {referenced}", table.name());
                }
                other => panic!("{}: expected DanglingReference, got {other:?}", table.name()),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn sampled_flag_corruption_is_a_typed_error() {
        let dir = exported("flag");
        let line = next_line(&dir, Table::Batches);
        corrupt(&dir, Table::Batches, |mut text| {
            text.push_str("0,1000,yes,<p>x</p>\n");
            text
        });
        expect_csv_error(&dir, line, "bad sampled flag", "batches");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
