//! Concurrency stress for the live service: one writer applying event
//! deltas while query threads continuously read published snapshots.
//!
//! What must hold (and is asserted here):
//!
//! - every query observes exactly one fully published version — the
//!   snapshot's gauges, row count, and fused aggregates are mutually
//!   consistent (no torn reads);
//! - versions are monotone per reader;
//! - readers *block* for the next version (`wait_for_version`, condvar)
//!   instead of spinning on the snapshot `Arc`, and every wake returns a
//!   version at least as new as the one waited for;
//! - after the stream drains, the live view equals the cold batch engine
//!   over the same rows at 1 and 4 worker threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crowd_ingest::load_events_str;
use crowd_serve::query::dashboard;
use crowd_serve::{EventFeed, LiveService};
use crowd_sim::SimConfig;
use crowd_testkit::compare_fused;
use crowd_testkit::differential::{fused_with_threads, FloatMode};

fn assert_final_matches_batch_at_threads(svc: &LiveService, feed: &EventFeed) {
    let mut full = (*feed.entities).clone();
    full.instances = svc.rows().clone_range(0..svc.rows().len());
    let final_fused = &svc.handle().snapshot().view.fused;
    for threads in [1usize, 4] {
        let engine = fused_with_threads(&full, threads);
        let diffs = compare_fused(final_fused, &engine, FloatMode::OrderTolerant);
        assert!(
            diffs.is_empty(),
            "drained live view diverged from the {threads}-thread batch engine:\n{}",
            diffs.join("\n")
        );
    }
}

#[test]
fn readers_never_observe_torn_state_while_the_writer_applies() {
    let feed = EventFeed::from_config(&SimConfig::tiny(71));
    let log = load_events_str(&feed.to_csv(), &feed.entities).expect("clean feed");
    let mut svc = LiveService::new(Arc::clone(&feed.entities));

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|reader_id| {
            let handle = svc.handle();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let entities = Arc::clone(&feed.entities);
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut last_events = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Block for the next unseen version instead of
                    // spinning; a timeout just re-checks the stop flag.
                    let Some(snap) =
                        handle.wait_for_version(last_version + 1, Duration::from_millis(20))
                    else {
                        continue;
                    };
                    // Monotone versions per reader — and the wake must
                    // deliver at least the version waited for.
                    assert!(
                        snap.version > last_version,
                        "reader {reader_id}: woke with a stale version \
                         (waited for {}, got {})",
                        last_version + 1,
                        snap.version
                    );
                    assert!(
                        snap.events_applied >= last_events,
                        "reader {reader_id}: events_applied went backwards"
                    );
                    last_version = snap.version;
                    last_events = snap.events_applied;
                    // Internal consistency: one published state, never a
                    // torn mix of writer progress and older aggregates.
                    assert_eq!(
                        snap.gauges.completed, snap.view.rows as u64,
                        "reader {reader_id}: gauges disagree with the view"
                    );
                    assert_eq!(
                        snap.view.fused.n_instances(),
                        snap.view.rows as u64,
                        "reader {reader_id}: fused row count disagrees with the view"
                    );
                    // Exercise the full query path against the snapshot.
                    if queries.fetch_add(1, Ordering::Relaxed).is_multiple_of(16) {
                        let dash = dashboard(&snap.view.fused, &entities);
                        assert_eq!(dash.n_instances, snap.view.rows as u64);
                    }
                }
                last_version
            })
        })
        .collect();

    // The single writer applies the canonical stream in uneven deltas,
    // with empty heartbeat batches interleaved.
    let mut applied = 0usize;
    for (i, chunk) in log.events.chunks(1500).enumerate() {
        svc.apply_events(chunk).expect("apply");
        applied += chunk.len();
        if i % 3 == 0 {
            svc.apply_events(&[]).expect("heartbeat");
        }
    }
    assert_eq!(applied, log.events.len());
    stop.store(true, Ordering::Relaxed);

    let final_version = svc.version();
    for r in readers {
        let seen = r.join().expect("reader panicked");
        assert!(seen <= final_version, "reader saw a version the writer never published");
    }
    assert!(queries.load(Ordering::Relaxed) > 0, "readers must actually have queried");

    assert_final_matches_batch_at_threads(&svc, &feed);
}

#[test]
fn single_reader_with_tiny_deltas_stays_consistent() {
    // Many tiny deltas maximize version churn relative to reads.
    let feed = EventFeed::from_config(&SimConfig::tiny(72));
    let log = load_events_str(&feed.to_csv(), &feed.entities).expect("clean feed");
    let mut svc = LiveService::new(Arc::clone(&feed.entities));

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let handle = svc.handle();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut versions = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let next = versions.last().copied().unwrap_or(0) + 1;
                let Some(snap) = handle.wait_for_version(next, Duration::from_millis(20)) else {
                    continue;
                };
                assert_eq!(snap.gauges.completed, snap.view.rows as u64);
                versions.push(snap.version);
            }
            versions
        })
    };

    for chunk in log.events.chunks(97) {
        svc.apply_events(chunk).expect("apply");
    }
    stop.store(true, Ordering::Relaxed);
    let versions = reader.join().expect("reader panicked");
    assert!(versions.windows(2).all(|w| w[0] <= w[1]), "versions must be monotone");

    assert_final_matches_batch_at_threads(&svc, &feed);
}
