//! End-to-end pipeline tests: simulate → CSV round-trip → enrich →
//! analyze, at test scale.

use std::sync::OnceLock;

use crowd_marketplace::analytics::Study;
use crowd_marketplace::prelude::*;

fn study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| Study::new(simulate(&SimConfig::tiny(2024))))
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let a = simulate(&SimConfig::tiny(5));
    let b = simulate(&SimConfig::tiny(5));
    assert_eq!(a.instances, b.instances);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.workers, b.workers);
}

#[test]
fn csv_roundtrip_preserves_everything() {
    let ds = simulate(&SimConfig::new(6, 0.0005));
    let dir = std::env::temp_dir().join(format!("crowd_e2e_{}", std::process::id()));
    crowd_core::csv::export_dir(&ds, &dir).expect("export");
    let back = crowd_core::csv::import_dir(&dir).expect("import");
    assert_eq!(ds.instances.len(), back.instances.len());
    assert_eq!(ds.instances, back.instances);
    assert_eq!(ds.batches, back.batches);
    assert_eq!(ds.task_types, back.task_types);
    assert_eq!(ds.workers, back.workers);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn enrichment_covers_the_sample() {
    let s = study();
    let sampled = s.dataset().batches.iter().filter(|b| b.sampled).count();
    assert_eq!(s.enriched_batches().count(), sampled);
    assert!(s.clusters().len() > 50);
    // Every instance is reachable through exactly one enriched batch.
    let total: u32 = s.enriched_batches().map(|m| m.n_instances).sum();
    assert_eq!(total as usize, s.dataset().instances.len());
}

#[test]
fn every_analysis_runs_on_the_same_study() {
    use crowd_marketplace::analytics::design::{
        drilldown, methodology, metrics, prediction, summary,
    };
    use crowd_marketplace::analytics::marketplace::{arrivals, availability, labels, load, trends};
    use crowd_marketplace::analytics::workers::{geography, lifetimes, sources, workload};

    let s = study();
    // §3
    assert!(!arrivals::weekly(s).weeks.is_empty());
    assert!(arrivals::by_weekday(s).iter().sum::<u64>() > 0);
    assert!(availability::weekly_workers(s).active_workers.iter().any(|&c| c > 0));
    assert!(availability::engagement_split(s).top10_task_share > 0.0);
    assert!(!load::cluster_load(s).batches_per_cluster.is_empty());
    assert!(!load::heavy_hitters(s, 10).is_empty());
    assert!(labels::goal_distribution(s).total() > 0);
    assert!(!trends::goal_trend(s).weeks.is_empty());
    // §4
    assert!(metrics::latency_decomposition(s).median_pickup_to_task_ratio > 1.0);
    assert_eq!(methodology::full_grid(s).len(), 15);
    assert_eq!(summary::disagreement_table(s).rows.len(), 4);
    assert_eq!(drilldown::fig25_panels(s).len(), 8);
    assert!(!prediction::predict_all(s, 1).is_empty());
    // §5
    assert!(!sources::per_source(s).is_empty());
    assert!(geography::distribution(s).total_workers > 0);
    assert!(!workload::distribution(s).tasks_by_rank.is_empty());
    assert!(!lifetimes::lifetime_stats(s).lifetimes_days.is_empty());
}

#[test]
fn html_enrichment_matches_batch_interfaces() {
    // The features the Study extracts from batch HTML must agree with an
    // independent extraction pass over the same markup.
    let s = study();
    for m in s.enriched_batches().take(100) {
        let html = s.dataset().batch(m.batch).html.as_ref().expect("sampled batch has HTML");
        let f = crowd_html::extract_features(html).expect("valid HTML");
        assert_eq!(f, m.features);
    }
}

#[test]
fn clusters_recover_planted_task_types() {
    // §3.3: the HTML-similarity clustering should recover the generator's
    // task types with high purity.
    let s = study();
    let ds = s.dataset();
    // Purity: for each cluster, the share of its batches belonging to the
    // cluster's majority type.
    let mut pure = 0usize;
    let mut total = 0usize;
    for c in s.clusters() {
        let mut counts = std::collections::HashMap::new();
        for &b in &c.batches {
            *counts.entry(ds.batch(b).task_type).or_insert(0usize) += 1;
        }
        let majority = counts.values().max().copied().unwrap_or(0);
        pure += majority;
        total += c.batches.len();
    }
    let purity = pure as f64 / total as f64;
    assert!(purity > 0.97, "cluster purity {purity}");
    // Completeness: few types split across many clusters.
    let mut clusters_of_type = std::collections::HashMap::new();
    for m in s.enriched_batches() {
        clusters_of_type
            .entry(ds.batch(m.batch).task_type)
            .or_insert_with(std::collections::HashSet::new)
            .insert(m.cluster);
    }
    let split = clusters_of_type.values().filter(|set| set.len() > 1).count();
    let frac = split as f64 / clusters_of_type.len() as f64;
    assert!(frac < 0.10, "split-type fraction {frac}");
}

#[test]
fn repro_pipeline_is_seed_sensitive() {
    let a = Study::new(simulate(&SimConfig::tiny(1)));
    let b = Study::new(simulate(&SimConfig::tiny(2)));
    assert_ne!(
        a.dataset().instances.len(),
        b.dataset().instances.len(),
        "different seeds produce different histories"
    );
}

#[test]
fn validation_rejects_corrupted_dataset() {
    let mut ds = simulate(&SimConfig::new(9, 0.0005));
    assert!(ds.validate().is_ok());
    ds.instances.set_trust(0, 7.0);
    assert!(ds.validate().is_err());
}
