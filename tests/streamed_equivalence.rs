//! End-to-end equivalence of the streaming build (DESIGN.md §16): with a
//! snapshot store and `--shards > 1`, the cold path streams each finished
//! shard to disk and the warm path rebuilds a columns-optional `Study`
//! from entities + enrichment alone — and **neither may change a single
//! published byte**. Every CSV `export` writes is compared bitwise against
//! a monolithic no-snapshot golden run, across the shards × threads grid
//! of the acceptance contract, for both the streamed-cold and the
//! streamed-warm run of every cell.

use std::path::Path;
use std::process::Command;

/// Every file `export` writes, per its module docs.
const FILES: [&str; 12] = [
    "weekly.csv",
    "weekday.csv",
    "cluster_sizes.csv",
    "heavy_hitters.csv",
    "labels.csv",
    "trends.csv",
    "experiments.csv",
    "prediction.csv",
    "sources.csv",
    "geography.csv",
    "lifetimes.csv",
    "cohorts.csv",
];

fn run_export(out: &Path, snapshot_dir: Option<&Path>, threads: usize, shards: usize) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_export"));
    cmd.args(["--scale", "0.0005", "--seed", "13", "--threads"])
        .arg(threads.to_string())
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--out")
        .arg(out)
        // Never let an ambient store leak into the no-snapshot cells.
        .env_remove("CROWD_SNAPSHOT_DIR");
    match snapshot_dir {
        Some(dir) => {
            cmd.arg("--snapshot-dir").arg(dir);
        }
        None => {
            cmd.arg("--no-snapshot");
        }
    }
    let status = cmd.status().expect("spawn export binary");
    assert!(status.success(), "export --threads {threads} --shards {shards} failed");
}

fn assert_matches_golden(golden_dir: &Path, dir: &Path, what: &str) {
    for f in FILES {
        let golden = std::fs::read(golden_dir.join(f)).unwrap_or_else(|e| panic!("{f}: {e}"));
        assert!(!golden.is_empty(), "{f} is empty");
        assert_eq!(golden, std::fs::read(dir.join(f)).unwrap(), "{what} leaked into {f}");
    }
}

/// The acceptance grid: streamed cold build and streamed warm start are
/// byte-identical to the monolithic no-snapshot pipeline, at every shard
/// and thread count.
#[test]
fn streamed_cold_and_warm_exports_match_monolithic_golden() {
    let base = std::env::temp_dir().join(format!("crowd_streamed_eq_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let golden_dir = base.join("golden");
    run_export(&golden_dir, None, 1, 1);

    for shards in [1usize, 4, 16] {
        for threads in [1usize, 4] {
            let cell = base.join(format!("t{threads}_s{shards}"));
            let snap = cell.join("snap");

            // Cold: the store is empty, so shards > 1 takes the streaming
            // build (flush-as-you-go writer + streaming enricher).
            let cold = cell.join("cold");
            run_export(&cold, Some(&snap), threads, shards);
            assert_matches_golden(
                &golden_dir,
                &cold,
                &format!("streamed cold t{threads} s{shards}"),
            );
            assert_eq!(
                std::fs::read_dir(&snap).unwrap().count(),
                1,
                "cold run published exactly the snapshot, no temps (s{shards})"
            );

            // Warm: shards > 1 loads entities + enrichment only and streams
            // the fused scan back from the shard sections on demand.
            let warm = cell.join("warm");
            run_export(&warm, Some(&snap), threads, shards);
            assert_matches_golden(
                &golden_dir,
                &warm,
                &format!("streamed warm t{threads} s{shards}"),
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
