//! The resilient-ingest acceptance matrix: for every fault class the
//! chaos harness can inject, ingest must either *recover* — produce a
//! `Study` whose export CSVs are byte-identical to the clean-input run —
//! or *refuse* with a typed error and a populated quarantine report.
//! Never a panic, never a silently-wrong dataset.
//!
//! Also pins the determinism guarantee: clean-input ingest is
//! bit-identical under 1-thread and 4-thread pools.
//!
//! The non-`#[ignore]` tests are a smoke subset (one seed, instances
//! table). The full seeded matrix — every table × every fault kind ×
//! several seeds — runs under `--ignored` in the CI `chaos` job.

use std::path::PathBuf;
use std::sync::Arc;

use crowd_marketplace::core::csv::{self, export_dir, Table};
use crowd_marketplace::core::error::CoreError;
use crowd_marketplace::ingest::{
    ingest, ingest_dir, ChaosSource, DirSource, FaultKind, FaultPlan, IngestFailure, IngestOptions,
    Ingested, ManualClock,
};
use crowd_marketplace::sim::{simulate, SimConfig};
use rayon::ThreadPoolBuilder;

/// Small but non-trivial simulated marketplace (a few thousand instances):
/// large enough that seeded faults land in real data, small enough that
/// the smoke subset stays fast in debug builds.
fn sim_config() -> SimConfig {
    SimConfig::new(0xc0ffee, 0.0002)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crowd_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exports the reference dataset once per tag; returns the directory.
fn exported(tag: &str) -> PathBuf {
    let dir = scratch(tag);
    export_dir(&simulate(&sim_config()), &dir).expect("export reference dataset");
    dir
}

/// Ingest options with an injected clock: transient-fault retries cost
/// zero wall-clock time across the whole matrix.
fn opts() -> IngestOptions {
    IngestOptions { clock: Arc::new(ManualClock::new()), ..IngestOptions::default() }
}

/// The comparable export surface: every table rendered exactly as
/// `export_dir` would write it.
fn renders(ds: &crowd_marketplace::core::dataset::Dataset) -> Vec<String> {
    Table::ALL.iter().map(|&t| csv::render_table(ds, t).0).collect()
}

/// Byte length and record count (quote-aware, header included) of one
/// exported table file — the coordinates `FaultPlan::seeded` positions
/// its faults against.
fn table_stats(dir: &std::path::Path, table: Table) -> (u64, u64) {
    let bytes = std::fs::read(dir.join(table.file_name())).expect("read exported table");
    let text = String::from_utf8_lossy(&bytes);
    let records = csv::parse_records_lossy(&text).count() as u64;
    (bytes.len() as u64, records)
}

/// Runs one chaos case: `kind` seeded into `table`, everything else
/// clean. Returns the loader's verdict.
fn chaos_ingest(
    dir: &std::path::Path,
    table: Table,
    kind: FaultKind,
    seed: u64,
) -> Result<Ingested, IngestFailure> {
    let (len, records) = table_stats(dir, table);
    let plan = FaultPlan::seeded(seed, kind, len, records);
    let source = ChaosSource::new(DirSource::new(dir)).with_plan(table, plan);
    ingest(&source, &opts())
}

/// The acceptance oracle: recovery must be provably complete
/// (byte-identical export), refusal must be typed and reported. Either
/// way the verdict is reached without panicking.
fn assert_recovers_or_reports(
    verdict: Result<Ingested, IngestFailure>,
    baseline: &[String],
    context: &str,
) {
    match verdict {
        Ok(got) => {
            assert_eq!(
                renders(&got.dataset),
                baseline,
                "{context}: accepted a dataset that does not match the clean run"
            );
        }
        Err(failure) => {
            assert!(!failure.report.tables.is_empty(), "{context}: refusal with an empty report");
            assert!(!failure.error.to_string().is_empty(), "{context}: blank error");
        }
    }
}

#[test]
fn clean_ingest_is_bit_identical_across_thread_counts() {
    let dir = exported("threads");
    let run = |threads: usize| {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            let got = ingest_dir(&dir, &opts()).expect("clean ingest");
            assert!(got.report.is_clean(), "clean input must ingest clean");
            renders(&got.dataset)
        })
    };
    let single = run(1);
    assert_eq!(single, run(4), "1-thread and 4-thread ingest diverge");
    assert_eq!(single, run(3), "uneven chunk partitions diverge");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_ingest_is_idempotent_through_a_re_export() {
    // Ingest canonicalizes instance order (the simulator's arrival order
    // is not the canonical one), so the first pass may re-sort; but
    // export → ingest → export must be a fixed point: the second pass
    // reads back exactly what the first one wrote. Positional tables
    // round-trip byte-for-byte from the very first export.
    let dir = exported("roundtrip");
    let first = ingest_dir(&dir, &opts()).expect("clean ingest");
    for table in Table::ALL.iter().filter(|t| t.positional()) {
        let on_disk = std::fs::read_to_string(dir.join(table.file_name())).unwrap();
        assert_eq!(csv::render_table(&first.dataset, *table).0, on_disk, "{}", table.name());
    }
    let again = scratch("roundtrip2");
    export_dir(&first.dataset, &again).expect("re-export");
    let second = ingest_dir(&again, &opts()).expect("second ingest");
    assert!(second.report.is_clean(), "canonicalized export must ingest clean");
    assert_eq!(renders(&second.dataset), renders(&first.dataset), "ingest is idempotent");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&again);
}

#[test]
fn smoke_every_fault_kind_on_the_instances_table() {
    let dir = exported("smoke");
    let baseline = renders(&ingest_dir(&dir, &opts()).expect("clean ingest").dataset);
    for kind in FaultKind::ALL {
        let verdict = chaos_ingest(&dir, Table::Instances, kind, 7);
        match kind {
            // Recovery classes: dedup, canonical re-sort, and bounded
            // retry must reconstruct the clean dataset exactly.
            FaultKind::Duplicate | FaultKind::Reorder | FaultKind::Transient => {
                let got =
                    verdict.unwrap_or_else(|f| panic!("{} must recover, got: {f}", kind.name()));
                assert_eq!(renders(&got.dataset), baseline, "{} recovery", kind.name());
                let tr = got.report.table("instances").expect("instances report");
                assert_eq!(tr.verified, Some(true), "{} must verify digests", kind.name());
            }
            // Loss classes: the manifest makes silent damage detectable.
            FaultKind::Truncation | FaultKind::BitFlip => {
                let failure = verdict.err().unwrap_or_else(|| {
                    panic!("{} must be refused, not silently accepted", kind.name())
                });
                assert!(
                    matches!(
                        failure.error,
                        CoreError::ManifestMismatch { .. }
                            | CoreError::Csv { .. }
                            | CoreError::BudgetExceeded { .. }
                            | CoreError::IoExhausted { .. }
                    ),
                    "{}: unexpected error {:?}",
                    kind.name(),
                    failure.error
                );
                assert!(!failure.report.tables.is_empty(), "{} report", kind.name());
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full acceptance matrix: every table × every fault kind × five
/// seeds. Entity tables are positional, so duplicate/reorder damage there
/// is expected to be *refused* (the digest chain is order-sensitive) —
/// unless the fault happens to be a no-op (e.g. swapping two identical
/// worker rows), in which case recovery must still be byte-exact. The
/// shared oracle covers both without encoding the fault schedule twice.
#[test]
#[ignore = "full chaos matrix; run via the CI chaos job or --ignored"]
fn full_fault_matrix_recovers_or_reports() {
    let dir = exported("matrix");
    let baseline = renders(&ingest_dir(&dir, &opts()).expect("clean ingest").dataset);
    let mut cases = 0u32;
    for &table in Table::ALL.iter() {
        for kind in FaultKind::ALL {
            for seed in 0..5u64 {
                let context = format!("{}/{}/seed {seed}", table.name(), kind.name());
                let verdict = chaos_ingest(&dir, table, kind, seed);
                // Transient faults never lose data: recovery is mandatory.
                if kind == FaultKind::Transient {
                    assert!(verdict.is_ok(), "{context}: transient reads must recover");
                }
                assert_recovers_or_reports(verdict, &baseline, &context);
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 6 * 5 * 5, "matrix coverage");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation and bit corruption must be refused on *every* table — the
/// manifest turns silent damage into a typed, attributable error.
#[test]
#[ignore = "part of the chaos matrix; run via the CI chaos job or --ignored"]
fn loss_faults_are_refused_on_every_table() {
    let dir = exported("loss");
    for &table in Table::ALL.iter() {
        for kind in [FaultKind::Truncation, FaultKind::BitFlip] {
            for seed in 0..3u64 {
                let context = format!("{}/{}/seed {seed}", table.name(), kind.name());
                match chaos_ingest(&dir, table, kind, seed) {
                    Err(failure) => {
                        assert!(!failure.report.tables.is_empty(), "{context}: empty report");
                    }
                    Ok(_) => panic!("{context}: damaged table must not ingest as clean"),
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
