//! Chunk-boundary regression tests for the fused scan engine.
//!
//! `ScanPass` splits the instance table into fixed 8192-row chunks and
//! merges chunk results sequentially in chunk order; that is the whole
//! determinism contract. These tests pin the behaviour exactly at the
//! lengths where the chunking logic can go wrong (empty table, one row,
//! one row either side of a boundary, a boundary plus one) using an
//! order-sensitive float accumulator, and check merge-order independence
//! by running the same scan under 1-thread and 4-thread rayon pools.

use crowd_core::fixture::order_sensitive;
use crowd_core::prelude::*;

const CHUNK: usize = ScanPass::CHUNK;

/// Sums √trust — an order-sensitive f64 fold (square roots carry full
/// 53-bit mantissas, so every addition rounds and any regrouping shifts
/// the low bits) — and counts rows, which must be exact at any length.
#[derive(Default)]
struct TrustProbe {
    sum: f64,
    rows: u64,
}

impl Accumulator for TrustProbe {
    type Output = (f64, u64);

    fn init(&self) -> Self {
        TrustProbe::default()
    }

    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.sum += f64::from(row.trust).sqrt();
        self.rows += 1;
    }

    fn merge(&mut self, other: Self) {
        self.sum += other.sum;
        self.rows += other.rows;
    }

    fn finish(self, _ds: &Dataset) -> (f64, u64) {
        (self.sum, self.rows)
    }
}

/// The scan result computed by hand with the engine's contract: fold each
/// fixed-size chunk sequentially, then merge the chunk sums in order.
fn manual_chunked(ds: &Dataset) -> (f64, u64) {
    let trust = ds.instances.trust_col();
    let mut total = 0.0f64;
    for chunk in trust.chunks(CHUNK) {
        let mut part = 0.0f64;
        for &t in chunk {
            part += f64::from(t).sqrt();
        }
        total += part;
    }
    (total, trust.len() as u64)
}

fn scan_in_pool(ds: &Dataset, threads: usize) -> (f64, u64) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("local rayon pool")
        .install(|| ScanPass::run(ds, &TrustProbe::default()))
}

#[test]
fn boundary_lengths_match_manual_chunked_fold() {
    for len in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 1] {
        let ds = order_sensitive(len);
        assert_eq!(ds.instances.len(), len);
        let (sum, rows) = ScanPass::run(&ds, &TrustProbe::default());
        let (want_sum, want_rows) = manual_chunked(&ds);
        assert_eq!(rows, want_rows, "len {len}");
        assert_eq!(sum.to_bits(), want_sum.to_bits(), "len {len}: {sum} vs {want_sum}");
    }
}

#[test]
fn boundary_lengths_are_thread_count_invariant() {
    for len in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 1] {
        let ds = order_sensitive(len);
        let (s1, r1) = scan_in_pool(&ds, 1);
        let (s4, r4) = scan_in_pool(&ds, 4);
        assert_eq!(r1, r4, "len {len}");
        assert_eq!(s1.to_bits(), s4.to_bits(), "len {len}: 1-thread {s1} vs 4-thread {s4}");
    }
}

#[test]
fn chunked_sum_differs_from_plain_sequential_sum_past_one_chunk() {
    // Meta-check that the probe is actually order-sensitive: once a later
    // chunk holds more than one row, the engine's per-chunk partial sums
    // round differently from a naive row-by-row fold — if no multi-chunk
    // length shows a bitwise difference, these tests could never catch a
    // chunking bug. (At CHUNK+1 the trailing chunk has a single row, so
    // the two folds coincide there by construction.)
    let mut diverged = false;
    for len in [CHUNK + 2, 2 * CHUNK, 2 * CHUNK + 1] {
        let ds = order_sensitive(len);
        let (engine, _) = ScanPass::run(&ds, &TrustProbe::default());
        let sequential: f64 = ds.instances.trust_col().iter().map(|&t| f64::from(t).sqrt()).sum();
        // Equal as real numbers to ~ulp-scale tolerance…
        assert!((engine - sequential).abs() <= engine.abs() * 1e-12, "len {len}");
        // …but not necessarily bit-for-bit.
        diverged |= engine.to_bits() != sequential.to_bits();
    }
    assert!(diverged, "fixture no longer distinguishes chunked from sequential summation");
}
