//! Checkpoint/restore equivalence: a service killed mid-stream and
//! restored from its latest checkpoint, after replaying the event tail,
//! must be indistinguishable from a service that never died — its
//! exported CSVs byte-identical and its published fused state
//! bit-identical. Torn checkpoint files must be stepped over with typed
//! faults, and a directory with nothing restorable must fail with a
//! typed error, never a panic or a silently partial state.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crowd_core::csv::export_dir;
use crowd_ingest::load_events_str;
use crowd_serve::{CheckpointError, CheckpointStore, EventFeed, LiveService, ServeError};
use crowd_sim::SimConfig;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("crowd-serve-test-{name}-{}", std::process::id()))
}

fn export_service(svc: &LiveService, dir: &Path) {
    let mut ds = (**svc.entities()).clone();
    ds.instances = svc.rows().clone_range(0..svc.rows().len());
    export_dir(&ds, dir).expect("export");
}

fn assert_dirs_byte_identical(a: &Path, b: &Path) {
    let mut names: Vec<String> = fs::read_dir(a)
        .expect("read export dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "export directory must not be empty");
    for name in names {
        let bytes_a = fs::read(a.join(&name)).expect("read a");
        let bytes_b = fs::read(b.join(&name)).expect("read b");
        assert_eq!(bytes_a, bytes_b, "exported `{name}` differs between runs");
    }
}

#[test]
fn killed_and_restored_run_exports_byte_identical_csvs() {
    let feed = EventFeed::from_config(&SimConfig::tiny(81));
    let log = load_events_str(&feed.to_csv(), &feed.entities).expect("clean feed");
    const DELTA: usize = 500;
    const CADENCE: u64 = 1000;

    // Uninterrupted reference run.
    let mut uninterrupted = LiveService::new(Arc::clone(&feed.entities));
    for chunk in log.events.chunks(DELTA) {
        uninterrupted.apply_events(chunk).expect("apply");
    }

    // Interrupted run: checkpoints every CADENCE events, killed after 5
    // deltas (mid-stream, past at least two checkpoints).
    let ckpt_dir = tmp("kill");
    let store = CheckpointStore::new(&ckpt_dir, 81);
    {
        let mut victim =
            LiveService::new(Arc::clone(&feed.entities)).with_checkpoints(store.clone(), CADENCE);
        for chunk in log.events.chunks(DELTA).take(5) {
            victim.apply_events(chunk).expect("apply");
        }
        assert!(victim.events_applied() < log.events.len() as u64, "killed mid-stream");
        // Killed: the service is dropped without any shutdown protocol.
    }
    assert!(store.list().len() >= 2, "cadence must have written checkpoints");

    // Restore from the newest checkpoint and replay the tail.
    let (mut restored, faults) = LiveService::restore(store, CADENCE).expect("restore");
    assert!(faults.is_empty(), "no checkpoint was damaged: {faults:?}");
    let resumed_at = restored.events_applied() as usize;
    assert!(
        resumed_at > 0 && resumed_at.is_multiple_of(CADENCE as usize),
        "resumed at a checkpoint"
    );
    for chunk in log.events[resumed_at..].chunks(DELTA) {
        restored.apply_events(chunk).expect("replay tail");
    }

    // Same gauges, bit-identical fused state, byte-identical exports.
    assert_eq!(restored.gauges(), uninterrupted.gauges());
    assert_eq!(restored.events_applied(), uninterrupted.events_applied());
    assert_eq!(
        restored.handle().snapshot().view.fused,
        uninterrupted.handle().snapshot().view.fused,
        "restored view must be bit-identical to the uninterrupted one"
    );
    let dir_a = tmp("export-uninterrupted");
    let dir_b = tmp("export-restored");
    export_service(&uninterrupted, &dir_a);
    export_service(&restored, &dir_b);
    assert_dirs_byte_identical(&dir_a, &dir_b);

    for d in [ckpt_dir, dir_a, dir_b] {
        fs::remove_dir_all(d).ok();
    }
}

#[test]
fn torn_checkpoints_fall_back_with_typed_faults() {
    let feed = EventFeed::from_config(&SimConfig::tiny(82));
    let log = load_events_str(&feed.to_csv(), &feed.entities).expect("clean feed");
    let ckpt_dir = tmp("torn");
    let store = CheckpointStore::new(&ckpt_dir, 82);
    {
        let mut svc =
            LiveService::new(Arc::clone(&feed.entities)).with_checkpoints(store.clone(), 800);
        for chunk in log.events.chunks(400).take(6) {
            svc.apply_events(chunk).expect("apply");
        }
    }
    let files = store.list();
    assert!(files.len() >= 2, "need at least two checkpoints for fallback");

    // Damage matrix over the newest file: each corruption class must be
    // detected and stepped over, landing on the previous checkpoint.
    let newest = files.last().unwrap().clone();
    let pristine = fs::read(&newest).unwrap();
    let torn: [(&str, Vec<u8>); 4] = [
        ("truncated-header", pristine[..20].to_vec()),
        ("bad-magic", {
            let mut b = pristine.clone();
            b[0] ^= 0xff;
            b
        }),
        ("truncated-payload", pristine[..pristine.len() - 37].to_vec()),
        ("payload-bitflip", {
            let mut b = pristine.clone();
            let at = b.len() - 64;
            b[at] ^= 0x10;
            b
        }),
    ];
    for (case, bytes) in torn {
        fs::write(&newest, &bytes).unwrap();
        let (restored, faults) = LiveService::restore(store.clone(), 800)
            .unwrap_or_else(|e| panic!("{case}: restore must fall back, got {e}"));
        assert_eq!(faults.len(), 1, "{case}: exactly the damaged file is skipped");
        assert_eq!(faults[0].path, newest, "{case}");
        assert!(
            restored.events_applied() < 2400,
            "{case}: must have fallen back to an older checkpoint"
        );
    }
    fs::write(&newest, &pristine).unwrap();

    // Every file torn: typed error listing every candidate, no panic.
    for f in &files {
        fs::write(f, b"not a checkpoint").unwrap();
    }
    match LiveService::restore(store, 800) {
        Err(ServeError::Checkpoint(CheckpointError::NoValidCheckpoint { faults })) => {
            assert_eq!(faults.len(), files.len());
        }
        other => panic!("expected NoValidCheckpoint, got {:?}", other.map(|_| "restored")),
    }
    fs::remove_dir_all(&ckpt_dir).ok();
}
