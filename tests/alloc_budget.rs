//! Allocation-budget pins for the hot paths, measured with a counting
//! global allocator.
//!
//! The kernel refactor's claim is not just "faster" but *allocation-free
//! in steady state*: a warmed [`ShingleScratch`] and a warmed
//! `sign_into` target vector must not touch the allocator at all, and the
//! streaming build (simulator shard flushing + streaming enricher) must
//! stay within a per-row allocation budget so a regression that
//! reintroduces per-row buffers fails loudly here rather than silently
//! costing throughput.
//!
//! Everything runs inside **one** `#[test]` — the counter is global, and
//! the harness runs separate tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts calls into the allocator (alloc + realloc; frees are not
/// interesting for the budgets below).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// The counter is process-global, so harness background threads can slip
/// a few allocations into any measurement window. The zero-allocation
/// pins therefore allow this much unrelated noise — far below the
/// hundreds a reintroduced per-call allocation would add.
const NOISE: u64 = 10;

#[test]
fn steady_state_allocation_budgets_hold() {
    use crowd_cluster::{MinHasher, ShingleScratch};

    // ---- shingling: zero allocations once the scratch is warm ----------
    let docs: Vec<String> = (0..32)
        .map(|i| {
            format!(
                "<div class=\"task\"><h1>Batch {i} labels IMAGES</h1>\
                 <p>rate the pictures and flag unsafe content {i}</p></div>"
            )
        })
        .collect();
    let mut scratch = ShingleScratch::new();
    for d in &docs {
        scratch.shingle(d, 3); // warm to the high-water document shape
    }
    let shingle_allocs = allocs_during(|| {
        for _ in 0..50 {
            for d in &docs {
                std::hint::black_box(scratch.shingle(d, 3));
            }
        }
    });
    // 1600 calls: even one allocation per call would be 160x the slop.
    assert!(
        shingle_allocs <= NOISE,
        "warmed ShingleScratch must be allocation-free (saw {shingle_allocs})"
    );

    // ---- minhash: zero allocations with a warmed signature buffer ------
    let hasher = MinHasher::new(128, 42);
    let shingle_vals: Vec<u64> = (0..500u64).map(|x| x.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    let mut sig = Vec::new();
    hasher.sign_into(&shingle_vals, &mut sig); // warm
    let sign_allocs = allocs_during(|| {
        for _ in 0..50 {
            hasher.sign_into(&shingle_vals, &mut sig);
            std::hint::black_box(&sig);
        }
    });
    assert!(sign_allocs <= NOISE, "warmed sign_into must be allocation-free (saw {sign_allocs})");

    // ---- streaming build: bounded allocations per emitted row ----------
    // The cold path (shard-flushing simulator + streaming enricher) pays
    // inherent per-row costs — answer text, per-item piles — but the shard
    // buffer and the enricher's pile buffers are recycled, so the per-row
    // allocation rate is a small constant. Measured ~1.1 allocs/row on
    // this host; the pin leaves ~2.5x headroom so only a reintroduced
    // per-row or per-shard buffer trips it.
    use crowd_analytics::study::StreamingEnricher;
    use crowd_sim::{prepare_streamed, SimConfig};

    let cfg = SimConfig::new(5, 0.002);
    let stream = prepare_streamed(&cfg);
    let mut enricher = StreamingEnricher::new(stream.entities());
    let shard_rows = crowd_core::ScanPass::CHUNK;
    let build_allocs = allocs_during(|| {
        let entities = stream.run(&cfg, shard_rows, &mut enricher).expect("infallible sink");
        std::hint::black_box(&entities);
    });
    let rows = enricher.rows() as u64;
    assert!(rows > 2 * shard_rows as u64, "need multiple shards to exercise buffer reuse");
    assert!(
        build_allocs <= 3 * rows,
        "streaming build allocated {build_allocs} times for {rows} rows \
         (> 3/row budget)"
    );
}
