//! Scan-fusion budget: a full reproduction run (every analytics entry
//! point the `repro` and `export` binaries touch) must read the instance
//! table through the fused scan engine at most twice. Before the
//! columnar refactor the same surface performed ~28 independent
//! full-table walks; the fused accumulator in `crowd_analytics` folds
//! them into one [`ScanPass`], memoized on the `Study`.

use crowd_marketplace::analytics::design::{
    drilldown, forecast, methodology, metrics, prediction, redundancy, summary,
};
use crowd_marketplace::analytics::marketplace::{arrivals, availability, labels, load, trends};
use crowd_marketplace::analytics::workers::{
    cohorts, geography, lifetimes, sessions, sources, workload,
};
use crowd_marketplace::core::query::ScanPass;
use crowd_marketplace::prelude::*;

#[test]
fn full_analytics_run_does_at_most_two_fused_passes() {
    let before = ScanPass::full_scan_count();
    let study = Study::new(simulate(&SimConfig::tiny(2017)));

    // Everything `repro -- all` and `export` compute, in one process.
    let _ = study.dataset().summary();
    let w = arrivals::weekly(&study);
    assert!(!w.weeks.is_empty());
    let _ = w.since(Timestamp::from_ymd(2015, 1, 1));
    let _ = arrivals::by_weekday(&study);
    let _ = arrivals::daily_load(&study, Timestamp::from_ymd(2015, 1, 1));
    let _ = availability::weekly_workers(&study);
    let _ = availability::engagement_split(&study);
    let _ = load::cluster_load(&study);
    let _ = load::heavy_hitters(&study, 10);
    let _ = labels::goal_distribution(&study);
    let _ = labels::data_distribution(&study);
    let _ = labels::operator_distribution(&study);
    let _ = labels::data_given_goal(&study);
    let _ = labels::operator_given_goal(&study);
    let _ = labels::operator_given_data(&study);
    let _ = trends::goal_trend(&study);
    let _ = trends::operator_trend(&study);
    let _ = trends::data_trend(&study);
    let _ = metrics::latency_decomposition(&study);
    let _ = methodology::full_grid(&study);
    let _ = summary::disagreement_table(&study);
    let _ = summary::task_time_table(&study);
    let _ = summary::pickup_time_table(&study);
    let _ = drilldown::fig25_panels(&study);
    let _ = prediction::predict_all(&study, 0xC0DE);
    let st = sources::per_source(&study);
    let _ = sources::active_sources_weekly(&study);
    let _ = sources::quality_stats(&study, &st);
    let _ = geography::distribution(&study);
    let _ = workload::distribution(&study);
    let _ = lifetimes::lifetime_stats(&study);
    let _ = lifetimes::active_trust(&study);
    let _ = sessions::sessions(&study, sessions::DEFAULT_GAP);
    // Re-segmenting with a different gap must reuse the cached intervals.
    let _ = sessions::sessions(&study, Duration::from_secs(5 * 60));
    let _ = cohorts::monthly_cohorts(&study);
    for profile in forecast::PickupProfile::all() {
        let _ = forecast::fit_pickup(&study, profile);
    }
    let _ = redundancy::redundancy(&study);

    let passes = ScanPass::full_scan_count() - before;
    assert!(passes >= 1, "the fused accumulator must actually run");
    assert!(passes <= 2, "scan-fusion budget blown: {passes} full instance-table passes");
}
