//! Property-based tests over the substrates' invariants.

use proptest::prelude::*;

use crowd_core::answer::{item_disagreement, Answer};
use crowd_core::time::{civil_from_days, days_from_civil, Timestamp};
use crowd_html::generator::InterfaceSpec;
use crowd_stats::binning::median_split;
use crowd_stats::bootstrap::bootstrap_ci;
use crowd_stats::cdf::EmpiricalCdf;
use crowd_stats::descriptive::{median, median_inplace};
use crowd_stats::histogram::{Histogram, HistogramKind};
use crowd_stats::mannwhitney::mann_whitney_u;
use crowd_stats::ttest::welch_t_test;

proptest! {
    #[test]
    fn civil_date_roundtrip(days in -200_000i64..200_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn weekday_advances_daily(day in -10_000i64..10_000) {
        let a = Timestamp::from_secs(day * 86_400).weekday().index();
        let b = Timestamp::from_secs((day + 1) * 86_400).weekday().index();
        prop_assert_eq!((a + 1) % 7, b);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = EmpiricalCdf::new(&xs).unwrap();
        xs.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for &x in &xs {
            let y = cdf.eval(x);
            prop_assert!(y >= prev && y <= 1.0);
            prev = y;
        }
        prop_assert_eq!(cdf.eval(f64::MAX), 1.0);
        prop_assert_eq!(cdf.eval(f64::MIN), 0.0);
    }

    #[test]
    fn cdf_quantile_inverts(xs in prop::collection::vec(-1e3f64..1e3, 1..100), q in 0.01f64..1.0) {
        let cdf = EmpiricalCdf::new(&xs).unwrap();
        let v = cdf.quantile(q).unwrap();
        prop_assert!(cdf.eval(v) >= q - 1e-12);
    }

    #[test]
    fn histogram_conserves_mass(xs in prop::collection::vec(-10f64..110.0, 0..300)) {
        let mut h = Histogram::new(HistogramKind::Linear { lo: 0.0, hi: 100.0 }, 13);
        h.extend(&xs);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    #[test]
    fn disagreement_is_bounded_and_permutation_invariant(
        mut answers in prop::collection::vec(0u16..4, 2..24),
        seed in 0u64..1000,
    ) {
        let to_answers = |xs: &[u16]| xs.iter().map(|&c| Answer::Choice(c)).collect::<Vec<_>>();
        let d1 = item_disagreement(&to_answers(&answers)).unwrap();
        prop_assert!((0.0..=1.0).contains(&d1));
        // Shuffle deterministically by rotating.
        let rot = (seed as usize) % answers.len();
        answers.rotate_left(rot);
        let d2 = item_disagreement(&to_answers(&answers)).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-12, "order must not matter");
    }

    #[test]
    fn median_split_partitions_everything(
        obs in prop::collection::vec((0f64..100.0, 0f64..10.0), 1..200)
    ) {
        if let Some(split) = median_split(&obs) {
            prop_assert_eq!(split.bin1.len() + split.bin2.len(), obs.len());
            prop_assert!(!split.bin1.is_empty() && !split.bin2.is_empty());
        }
    }

    #[test]
    fn welch_t_is_antisymmetric(
        a in prop::collection::vec(-100f64..100.0, 2..50),
        b in prop::collection::vec(-100f64..100.0, 2..50),
    ) {
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        match (ab, ba) {
            (Some(x), Some(y)) => {
                prop_assert!((x.t + y.t).abs() < 1e-9 || (x.t.is_infinite() && y.t.is_infinite()));
                prop_assert!((x.p_value - y.p_value).abs() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one direction failed, the other didn't"),
        }
    }

    #[test]
    fn mann_whitney_swapping_samples_mirrors_u(
        a in prop::collection::vec(0u8..20, 1..50),
        b in prop::collection::vec(0u8..20, 1..50),
    ) {
        // Integer-valued draws from a small domain force heavy ties, the
        // regime where the tie-corrected U is easiest to get wrong.
        let af: Vec<f64> = a.iter().map(|&x| f64::from(x)).collect();
        let bf: Vec<f64> = b.iter().map(|&x| f64::from(x)).collect();
        match (mann_whitney_u(&af, &bf), mann_whitney_u(&bf, &af)) {
            (Some(x), Some(y)) => {
                // The fundamental identity U_a + U_b = n_a · n_b …
                let product = (af.len() * bf.len()) as f64;
                prop_assert!((x.u + y.u - product).abs() < 1e-9, "{} + {} != {product}", x.u, y.u);
                // … and the standardized verdict is direction-antisymmetric.
                prop_assert!((x.z + y.z).abs() < 1e-9);
                prop_assert!((x.p_value - y.p_value).abs() < 1e-9);
                prop_assert_eq!(x.n, (af.len(), bf.len()));
                prop_assert_eq!(y.n, (bf.len(), af.len()));
            }
            (None, None) => {} // all values tied — degenerate both ways
            _ => prop_assert!(false, "swapping the samples changed degeneracy"),
        }
    }

    #[test]
    fn bootstrap_ci_brackets_estimate_and_widens_with_confidence(
        xs in prop::collection::vec(0u8..50, 1..100),
        seed in 0u64..1_000,
    ) {
        let xs: Vec<f64> = xs.iter().map(|&x| f64::from(x)).collect();
        let stat = |v: &[f64]| median(v).unwrap();
        let ci = bootstrap_ci(&xs, stat, 200, 0.95, seed).unwrap();
        prop_assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci:?}");
        // Nested percentile intervals: more confidence can never narrow.
        let narrow = bootstrap_ci(&xs, stat, 200, 0.80, seed).unwrap();
        let wide = bootstrap_ci(&xs, stat, 200, 0.99, seed).unwrap();
        prop_assert!(wide.width() >= ci.width() && ci.width() >= narrow.width(),
            "widths not monotone in level: {} / {} / {}",
            narrow.width(), ci.width(), wide.width());
    }

    #[test]
    fn median_inplace_agrees_with_median(xs in prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let expected = median(&xs);
        let mut scratch = xs.clone();
        let got = median_inplace(&mut scratch);
        match (expected, got) {
            (None, None) => prop_assert!(xs.is_empty()),
            (Some(e), Some(g)) => prop_assert_eq!(e.to_bits(), g.to_bits(), "{xs:?}"),
            other => prop_assert!(false, "one path degenerate: {other:?}"),
        }
    }

    #[test]
    fn minhash_estimates_jaccard(
        base in prop::collection::hash_set(0u64..5_000, 30..150),
        extra in prop::collection::hash_set(5_000u64..10_000, 30..150),
    ) {
        use crowd_cluster::{jaccard, MinHasher};
        let a: std::collections::HashSet<u64> = base.clone();
        let mut b = base;
        b.extend(extra);
        let exact = jaccard(&a, &b);
        let mh = MinHasher::new(256, 99);
        let est = mh.signature(&a).estimate_jaccard(&mh.signature(&b)).expect("same hash family");
        prop_assert!((est - exact).abs() < 0.2, "est {est} vs exact {exact}");
    }

    #[test]
    fn generated_interfaces_always_roundtrip(
        words in 0u32..800,
        questions in 1u32..8,
        text_boxes in 0u32..5,
        examples in 0u32..4,
        images in 0u32..6,
        options in 2u16..6,
        seed in 0u64..1_000,
    ) {
        let spec = InterfaceSpec {
            title: "prop test".into(),
            instruction_words: words,
            questions,
            text_boxes,
            examples,
            images,
            choice_options: options,
            seed,
            variant: seed ^ 0xABCD,
        };
        let html = spec.render();
        let f = crowd_html::extract_features(&html).unwrap();
        prop_assert_eq!(f.examples, examples);
        prop_assert_eq!(f.images, images);
        prop_assert_eq!(f.text_boxes, text_boxes);
        prop_assert!(f.words >= words);
        // Parse → write → parse is a fixed point.
        let doc = crowd_html::parse(&html).unwrap();
        let again = crowd_html::parse(&crowd_html::write_document(&doc)).unwrap();
        prop_assert_eq!(doc, again);
    }

    #[test]
    fn csv_field_roundtrip(s in "\\PC{0,60}") {
        let mut escaped = String::new();
        crowd_core::csv::escape_field(&s, &mut escaped);
        escaped.push('\n');
        let records: Vec<_> = crowd_core::csv::parse_records(&escaped)
            .map(|r| r.unwrap().1)
            .collect();
        prop_assert_eq!(records.len(), 1);
        prop_assert_eq!(&records[0][0], &s);
    }

    #[test]
    fn groupby_sums_match_total(
        rows in prop::collection::vec((0i64..20, -100f64..100.0), 1..300)
    ) {
        use crowd_table::{Agg, Table};
        let mut t = Table::new();
        t.push_int_column("k", rows.iter().map(|&(k, _)| k).collect()).unwrap();
        t.push_float_column("v", rows.iter().map(|&(_, v)| v).collect()).unwrap();
        let g = t.group_by("k").unwrap().agg("v", Agg::Sum).unwrap().finish();
        let grouped: f64 = g.floats("v_sum").unwrap().iter().sum();
        let direct: f64 = rows.iter().map(|&(_, v)| v).sum();
        prop_assert!((grouped - direct).abs() < 1e-6 * (1.0 + direct.abs()));
    }

    #[test]
    fn bucketization_total_and_order(
        xs in prop::collection::vec(-1e4f64..1e4, 2..300),
        n in 2usize..12,
    ) {
        use crowd_classify::Bucketization;
        for b in [Bucketization::by_range(&xs, n), Bucketization::by_percentiles(&xs, n)]
            .into_iter()
            .flatten()
        {
            let counts = b.counts(&xs);
            prop_assert_eq!(counts.iter().sum::<usize>(), xs.len());
            for w in b.upper_bounds.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            for &x in &xs {
                prop_assert!(b.bucket_of(x) < n);
            }
        }
    }

    #[test]
    fn union_find_respects_transitivity(
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80)
    ) {
        use crowd_cluster::UnionFind;
        let mut uf = UnionFind::new(40);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // find is idempotent and consistent with connectivity.
        for &(a, b) in &edges {
            prop_assert!(uf.connected(a, b));
            let ra = uf.find(a);
            prop_assert_eq!(uf.find(ra), ra);
        }
        let labels = uf.labels();
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), uf.components());
    }
}
