//! Golden equivalence for the snapshot cache at the end-user surface: the
//! CSVs `export` writes must be byte-identical whether the study was built
//! snapshot-free, on a cache miss (cold write), or from a cache hit (warm
//! read). The cache is a pure memoization — it must never leak into
//! published numbers.

use std::path::Path;
use std::process::Command;

const FILES: [&str; 12] = [
    "weekly.csv",
    "weekday.csv",
    "cluster_sizes.csv",
    "heavy_hitters.csv",
    "labels.csv",
    "trends.csv",
    "experiments.csv",
    "prediction.csv",
    "sources.csv",
    "geography.csv",
    "lifetimes.csv",
    "cohorts.csv",
];

fn run_export(out: &Path, snapshot: Option<&Path>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_export"));
    cmd.args(["--scale", "0.0005", "--seed", "11", "--threads", "2", "--out"]).arg(out);
    match snapshot {
        Some(dir) => cmd.arg("--snapshot-dir").arg(dir),
        None => cmd.arg("--no-snapshot"),
    };
    // Isolate from any ambient cache configuration.
    cmd.env_remove("CROWD_SNAPSHOT_DIR");
    let status = cmd.status().expect("spawn export binary");
    assert!(status.success(), "export failed (snapshot: {snapshot:?})");
}

#[test]
fn export_is_byte_identical_across_snapshot_modes() {
    let base = std::env::temp_dir().join(format!("crowd_snap_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");

    let fresh = base.join("fresh");
    let cold = base.join("cold");
    let warm = base.join("warm");
    run_export(&fresh, None); // --no-snapshot: never touches the cache
    run_export(&cold, Some(&cache)); // miss: simulates, writes the snapshot
    let n_snapshots =
        std::fs::read_dir(&cache).expect("cache dir created").filter_map(|e| e.ok()).count();
    assert_eq!(n_snapshots, 1, "cold run wrote exactly one snapshot");
    run_export(&warm, Some(&cache)); // hit: loads the snapshot

    for f in FILES {
        let golden = std::fs::read(fresh.join(f)).unwrap_or_else(|e| panic!("{f}: {e}"));
        assert!(!golden.is_empty(), "{f} is empty");
        assert_eq!(golden, std::fs::read(cold.join(f)).unwrap(), "cold write changed {f}");
        assert_eq!(golden, std::fs::read(warm.join(f)).unwrap(), "warm read changed {f}");
    }
    std::fs::remove_dir_all(&base).ok();
}
