//! Golden determinism for the `export` binary: repeated runs — and runs
//! under different thread counts — must write byte-identical CSV files.
//! This is the end-user face of the determinism contract (DESIGN.md §10):
//! the fixed-chunk fused scan and the deterministic parallel pipeline
//! guarantee that parallelism never leaks into published numbers.

use std::path::Path;
use std::process::Command;

/// Every file `export` writes, per its module docs.
const FILES: [&str; 12] = [
    "weekly.csv",
    "weekday.csv",
    "cluster_sizes.csv",
    "heavy_hitters.csv",
    "labels.csv",
    "trends.csv",
    "experiments.csv",
    "prediction.csv",
    "sources.csv",
    "geography.csv",
    "lifetimes.csv",
    "cohorts.csv",
];

fn run_export(dir: &Path, threads: usize) {
    let status = Command::new(env!("CARGO_BIN_EXE_export"))
        .args(["--scale", "0.0005", "--seed", "11", "--threads"])
        .arg(threads.to_string())
        .arg("--out")
        .arg(dir)
        .status()
        .expect("spawn export binary");
    assert!(status.success(), "export --threads {threads} failed");
}

#[test]
fn export_is_byte_identical_across_runs_and_thread_counts() {
    let base = std::env::temp_dir().join(format!("crowd_export_golden_{}", std::process::id()));
    let repeat_a = base.join("repeat_a");
    let repeat_b = base.join("repeat_b");
    let wide = base.join("threads_4");
    run_export(&repeat_a, 1);
    run_export(&repeat_b, 1);
    run_export(&wide, 4);

    for f in FILES {
        let golden = std::fs::read(repeat_a.join(f)).unwrap_or_else(|e| panic!("{f}: {e}"));
        assert!(!golden.is_empty(), "{f} is empty");
        assert_eq!(golden, std::fs::read(repeat_b.join(f)).unwrap(), "repeated run changed {f}");
        assert_eq!(golden, std::fs::read(wide.join(f)).unwrap(), "thread count leaked into {f}");
    }
    std::fs::remove_dir_all(&base).ok();
}
