//! Golden determinism for the `export` binary: repeated runs — and runs
//! under different thread and shard counts — must write byte-identical CSV
//! files. This is the end-user face of the determinism contract
//! (DESIGN.md §10, §15): the fixed-chunk fused scan and the deterministic
//! parallel pipeline guarantee that neither parallelism nor the sharded
//! store layout ever leaks into published numbers.

use std::path::Path;
use std::process::Command;

/// Every file `export` writes, per its module docs.
const FILES: [&str; 12] = [
    "weekly.csv",
    "weekday.csv",
    "cluster_sizes.csv",
    "heavy_hitters.csv",
    "labels.csv",
    "trends.csv",
    "experiments.csv",
    "prediction.csv",
    "sources.csv",
    "geography.csv",
    "lifetimes.csv",
    "cohorts.csv",
];

fn run_export(dir: &Path, threads: usize, shards: usize) {
    let status = Command::new(env!("CARGO_BIN_EXE_export"))
        .args(["--scale", "0.0005", "--seed", "11", "--threads"])
        .arg(threads.to_string())
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--out")
        .arg(dir)
        .status()
        .expect("spawn export binary");
    assert!(status.success(), "export --threads {threads} --shards {shards} failed");
}

#[test]
fn export_is_byte_identical_across_runs_threads_and_shards() {
    let base = std::env::temp_dir().join(format!("crowd_export_golden_{}", std::process::id()));
    let golden_dir = base.join("golden_t1_s1");
    run_export(&golden_dir, 1, 1);

    // A repeated identical run, plus the full shards × threads grid from
    // the acceptance contract, every cell compared against the golden run.
    let mut cells: Vec<(String, usize, usize)> = vec![("repeat_t1_s1".into(), 1, 1)];
    for shards in [1, 3, 8] {
        for threads in [1, 4] {
            if (threads, shards) != (1, 1) {
                cells.push((format!("t{threads}_s{shards}"), threads, shards));
            }
        }
    }
    for (name, threads, shards) in &cells {
        run_export(&base.join(name), *threads, *shards);
    }

    for f in FILES {
        let golden = std::fs::read(golden_dir.join(f)).unwrap_or_else(|e| panic!("{f}: {e}"));
        assert!(!golden.is_empty(), "{f} is empty");
        for (name, threads, shards) in &cells {
            assert_eq!(
                golden,
                std::fs::read(base.join(name).join(f)).unwrap(),
                "threads={threads} shards={shards} leaked into {f}"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
