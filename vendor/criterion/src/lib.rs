//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The registry is unreachable in the build environment, so the real
//! crate cannot be fetched; this stand-in keeps `benches/` source-
//! compatible and still *measures*: each benchmark runs a warmup pass plus
//! `sample_size` timed iterations and prints min/median/mean wall-clock
//! times (and throughput when configured). No statistical analysis, HTML
//! reports, or regression tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; ignored by this stand-in
/// (every iteration re-runs setup, outside the timed section).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Names that can label a benchmark: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Times one closure invocation per call; handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warmup
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup()` value per sample; setup runs
    /// outside the timed section.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measurement-time hint; accepted for compatibility, unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.into_id(), &mut bencher.samples, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{group}/{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples){rate}",
        samples.len()
    );
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let rendered = id.into_id();
        let mut g = self.benchmark_group("bench");
        g.bench_function(rendered, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("iter", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(2u64 + 2)
                })
            });
            g.finish();
        }
        assert!(ran >= 3, "warmup + samples ran");
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(4);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter_batched(|| vec![x; 4], |v| v.into_iter().sum::<u32>(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
