//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro over `name in strategy` arguments,
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `prop::collection::{vec, hash_set}`, and string-pattern strategies.
//!
//! The registry is unreachable in the build environment, so the real crate
//! cannot be fetched. This stand-in keeps call sites source-compatible but
//! simplifies the engine: each test draws a fixed number of random cases
//! from a deterministic per-case seed, and failures panic immediately
//! (no shrinking). That preserves the tests' role as randomized invariant
//! checks while staying dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const CASES: u32 = 96;

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case, keyed by test seed and case index.
    pub fn new(seed: u64, case: u64) -> TestRng {
        TestRng { state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`, `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit();
                let v = v as $t;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// String pattern strategy. Only the `{lo,hi}` length suffix of the
/// pattern is honoured; characters are drawn from a printable pool
/// (ASCII incl. quotes/commas/separators plus a few multi-byte
/// code points), which deliberately exercises CSV-escaping paths.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', '\t', ',', ';', '"', '\'', '\\',
            '/', '.', '-', '_', '(', ')', '{', '}', '<', '>', '=', '+', '*', '&', '%', 'é', 'ß',
            '中', '🦀',
        ];
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| POOL[rng.below(POOL.len() as u64) as usize]).collect()
    }
}

/// Extracts `lo`/`hi` from a trailing `{lo,hi}` regex repetition.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_suffix('}')?.rsplit_once('{')?.1;
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// The `prop` namespace (`prop::collection::…` at call sites).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<T>` with element strategy `element` and a
        /// size range.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy for `HashSet<T>`; sizes below `size.start` may occur
        /// when the element domain is too small, matching real proptest's
        /// best-effort behaviour loosely.
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// See [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let target = self.size.start + rng.below(span) as usize;
                let mut out = HashSet::with_capacity(target);
                // Bounded attempts: small element domains cannot always
                // reach `target` distinct values.
                for _ in 0..target.saturating_mul(8).max(8) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.sample(rng));
                }
                out
            }
        }
    }
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use super::prop;
    pub use super::Strategy;
    pub use super::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[$meta]
            fn $name() {
                // Per-test seed: stable across runs, distinct across tests.
                let seed = {
                    let name = stringify!($name);
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in name.bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                for case in 0..$crate::CASES {
                    let mut __proptest_rng =
                        $crate::TestRng::new(seed, u64::from(case));
                    $(
                        let $arg = $crate::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside `proptest!`; panics with the case inputs'
/// message on failure (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1, 0);
        for _ in 0..1_000 {
            let v = (5i64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_hash_set_sizes() {
        let mut rng = TestRng::new(2, 0);
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..100, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            let s = prop::collection::hash_set(0u64..1_000, 10..20).sample(&mut rng);
            assert!(s.len() < 20);
        }
    }

    #[test]
    fn string_pattern_honours_length_suffix() {
        let mut rng = TestRng::new(3, 0);
        for _ in 0..200 {
            let s = "\\PC{0,60}".sample(&mut rng);
            assert!(s.chars().count() <= 60);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..10, (a, b) in (0i64..5, 0.0f64..1.0)) {
            prop_assert!(x < 10);
            prop_assert!(a < 5 && b < 1.0);
            prop_assert_eq!(x, x, "identity");
        }
    }
}
