//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace only gates serialization behind an *optional* `serde`
//! feature that no in-tree consumer enables; these derives exist so the
//! feature still compiles (e.g. under `--all-features`). They expand to
//! nothing and accept (ignore) `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
