//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng::gen_range`] over integer/float ranges, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The registry is unreachable in the build environment, so the real crate
//! cannot be fetched; this crate keeps the same module paths and call-site
//! syntax. `StdRng` here is xoshiro256++ seeded via splitmix64 — a
//! different (but high-quality) stream than upstream's ChaCha12, which is
//! fine because the workspace never pins golden values of the raw stream,
//! only statistical and self-consistency properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One step of the splitmix64 sequence (also used to expand seeds).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3n;
            s2 ^= t;
            self.s = [s0, s1, s2, s3n.rotate_left(45)];
            result
        }
    }
}

/// Uniform-range sampling machinery (`rand::distributions::uniform`).
pub mod distributions {
    /// The `SampleRange` trait that powers [`crate::Rng::gen_range`].
    pub mod uniform {
        use super::super::*;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Types [`crate::Rng::gen_range`] can sample uniformly.
        ///
        /// Mirrors upstream's shape: the *blanket* range impls below defer
        /// to this per-type trait, which is what lets type inference unify
        /// an un-suffixed range literal with the use site's type.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Samples `[lo, hi)` when `inclusive` is false, `[lo, hi]`
            /// otherwise.
            fn sample_uniform<R: Rng + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                T::sample_uniform(lo, hi, true, rng)
            }
        }

        /// Multiply-shift bounded sampling of `[0, span)`, span > 0.
        pub(crate) fn bounded(rng: &mut (impl Rng + ?Sized), span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
        }

        macro_rules! impl_int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: Rng + ?Sized>(
                        lo: $t,
                        hi: $t,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> $t {
                        let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                        assert!(span > 0, "cannot sample empty range");
                        if span > i128::from(u64::MAX) {
                            // Full 64-bit range: every output is valid.
                            return (lo as i128 + rng.next_u64() as i128) as $t;
                        }
                        (lo as i128 + bounded(rng, span as u64) as i128) as $t
                    }
                }
            )*};
        }
        impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: Rng + ?Sized>(
                        lo: $t,
                        hi: $t,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> $t {
                        let _ = inclusive; // [lo, hi] and [lo, hi) coincide a.e.
                        assert!(lo < hi, "cannot sample empty range");
                        // 53 uniform mantissa bits in [0, 1).
                        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                        // Guard against FP rounding landing exactly on `hi`.
                        if v < hi { v } else { lo }
                    }
                }
            )*};
        }
        impl_float_uniform!(f32, f64);
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..3_600);
            assert!((5..3_600).contains(&v));
            let w: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&w));
            let u: u16 = rng.gen_range(0..1u16);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn epsilon_range_is_strictly_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
