//! Offline stand-in for the `serde` surface this workspace names.
//!
//! `crowd-core` exposes an *optional* `serde` feature that no in-tree
//! consumer enables; the registry is unreachable in the build environment,
//! so this stand-in exists to keep the dependency graph resolvable (and
//! `--all-features` compilable). The traits are markers and the derives
//! expand to nothing — wire in the real crate before relying on actual
//! serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
