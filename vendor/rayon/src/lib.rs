//! Offline data-parallelism shim exposing the subset of the `rayon` API
//! this workspace uses, implemented on `std::thread::scope`.
//!
//! The registry is unreachable in the build environment, so the real crate
//! cannot be fetched. Call sites (`par_iter().map(..).collect()`,
//! `ThreadPoolBuilder`, `current_num_threads`) keep rayon's syntax, so the
//! shim can be swapped for the real crate by flipping one workspace
//! dependency line.
//!
//! Semantics guaranteed by this shim (and relied on for determinism):
//!
//! * `par_iter().map(f).collect::<Vec<_>>()` preserves input order
//!   bit-exactly, regardless of thread count — items are split into
//!   contiguous chunks, each chunk is mapped on its own thread, and chunk
//!   results are concatenated in chunk order.
//! * With one thread (or one item) the computation runs inline on the
//!   calling thread; output is identical either way.
//!
//! Thread count resolution, most specific first: the innermost active
//! [`ThreadPool::install`] scope, then a pool configured via
//! [`ThreadPoolBuilder::build_global`], then the `CROWD_THREADS`
//! environment variable, then `std::thread::available_parallelism`.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread count configured via [`ThreadPoolBuilder::build_global`];
/// 0 means "not configured".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = none.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel iterators will use right now.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("CROWD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type of [`ThreadPoolBuilder::build`]; this shim never fails to
/// build, the type exists for call-site compatibility.
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] (or the global default).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto-detected) thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count; 0 restores auto-detection.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle. The shim spawns scoped threads per operation,
    /// so the "pool" only records the configured width.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }

    /// Configures the process-wide default thread count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A configured parallelism width; see [`ThreadPoolBuilder`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count active for every parallel
    /// iterator invoked (transitively) inside it on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The pool's configured width (0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Order-preserving parallel map: contiguous chunks, one thread per chunk,
/// results concatenated in chunk order.
fn par_map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// A pending parallel iteration over a slice.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f, _out: std::marker::PhantomData }
    }

    /// Runs `f` on every element for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _ = par_map_slice(self.items, f);
    }
}

/// A mapped parallel iteration, ready to collect.
pub struct ParMap<'a, T: Sync, R, F> {
    items: &'a [T],
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<'a, T: Sync, R, F> ParMap<'a, T, R, F>
where
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C>(self) -> C
    where
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, self.f))
    }
}

/// Types that expose [`ParIter`] over their elements by reference.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;

    /// Starts a parallel iteration over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The traits needed at `par_iter` call sites, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let par: Vec<u64> =
                pool.install(|| items.par_iter().map(|&x| x * x).collect::<Vec<_>>());
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let three = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        one.install(|| {
            assert_eq!(current_num_threads(), 1);
            three.install(|| assert_eq!(current_num_threads(), 3));
            assert_eq!(current_num_threads(), 1);
        });
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect::<Vec<_>>();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect::<Vec<_>>();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let items: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        items.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5_050);
    }

    #[test]
    fn build_global_sets_default_width() {
        // Runs in its own test, but installs still take precedence.
        ThreadPoolBuilder::new().num_threads(2).build_global().unwrap();
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        one.install(|| assert_eq!(current_num_threads(), 1));
        ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    }
}
